"""Tests for the §3.3 spatiotemporal dependency graph.

The central property: the *incrementally* maintained blocked edges always
equal a from-scratch recomputation, across random rule-respecting
schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.config import DependencyConfig
from repro.core import DependencyRules
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.errors import SchedulingError


def _graph(positions, **cfg):
    rules = DependencyRules(DependencyConfig(**cfg))
    return SpatioTemporalGraph(rules, dict(enumerate(positions))), rules


class TestGraphBasics:
    def test_initial_state(self):
        g, _ = _graph([(0, 0), (10, 0)])
        assert g.min_step == 0 and g.max_step == 0
        assert not g.is_blocked(0) and not g.is_blocked(1)

    def test_commit_advances(self):
        g, _ = _graph([(0, 0), (100, 0)])
        g.mark_running([0])
        g.commit([0], {0: (1, 0)})
        assert g.step[0] == 1
        assert g.pos[0] == (1, 0)
        assert g.max_step == 1 and g.min_step == 0

    def test_leader_becomes_blocked(self):
        # Two agents 8 apart: A can lead until (gap+1)*1+4 >= 8, i.e. gap 3.
        g, rules = _graph([(0, 0), (8, 0)])
        for lead in range(1, 4):
            g.mark_running([0])
            candidates = g.commit([0], {0: (0, 0)})
            if lead < 3:
                assert not g.is_blocked(0), f"lead {lead} should be free"
            else:
                assert g.is_blocked(0)
                assert g.blockers_of(0) == frozenset({1})

    def test_waiter_released_on_commit(self):
        g, _ = _graph([(0, 0), (8, 0)])
        for _ in range(3):
            g.mark_running([0])
            g.commit([0], {0: (0, 0)})
        assert g.is_blocked(0)
        g.mark_running([1])
        candidates = g.commit([1], {1: (8, 0)})
        assert 0 in candidates
        assert not g.is_blocked(0)

    def test_dispatch_blocked_rejected(self):
        g, _ = _graph([(0, 0), (8, 0)])
        for _ in range(3):
            g.mark_running([0])
            g.commit([0], {0: (0, 0)})
        with pytest.raises(SchedulingError):
            g.mark_running([0])

    def test_double_dispatch_rejected(self):
        g, _ = _graph([(0, 0), (100, 0)])
        g.mark_running([0])
        with pytest.raises(SchedulingError):
            g.mark_running([0])

    def test_commit_not_running_rejected(self):
        g, _ = _graph([(0, 0)])
        with pytest.raises(SchedulingError):
            g.commit([0], {0: (0, 0)})

    def test_snapshot_and_validate(self):
        g, _ = _graph([(0, 0), (50, 0)])
        g.mark_running([0])
        g.commit([0], {0: (1, 0)})
        snap = g.snapshot()
        assert snap == [(0, 1, (1, 0)), (1, 0, (50, 0))]
        g.validate()  # far apart: no violation

    def test_cluster_commit_together(self):
        g, _ = _graph([(0, 0), (2, 0), (100, 0)])
        g.mark_running([0, 1])
        g.commit([0, 1], {0: (1, 0), 1: (3, 0)})
        assert g.step[0] == g.step[1] == 1


class TestIncrementalInvariant:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 10))
    def test_incremental_matches_full_recompute(self, seed, n):
        rng = FastRng(seed)
        positions = [(rng.integers(0, 25), rng.integers(0, 25))
                     for _ in range(n)]
        g, rules = _graph(positions)

        def full_blockers(aid):
            return {b for b in range(n) if b != aid and rules.blocked(
                g.pos[aid], g.step[aid], g.pos[b], g.step[b])}

        for _ in range(30):
            # choose a random dispatchable coupled cluster
            order = sorted(range(n), key=lambda _: rng.random())
            dispatched = False
            for seed_aid in order:
                if g.running[seed_aid] or g.is_blocked(seed_aid):
                    continue
                cluster = {seed_aid}
                frontier = [seed_aid]
                while frontier:
                    x = frontier.pop()
                    for other in range(n):
                        if (other not in cluster
                                and not g.running[other]
                                and g.step[other] == g.step[x]
                                and rules.coupled(g.pos[x], g.pos[other])):
                            cluster.add(other)
                            frontier.append(other)
                if any(g.is_blocked(m) for m in cluster):
                    continue
                members = sorted(cluster)
                g.mark_running(members)
                new_pos = {}
                for m in members:
                    x, y = g.pos[m]
                    dx, dy = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)][
                        rng.integers(0, 5)]
                    new_pos[m] = (x + dx, y + dy)
                g.commit(members, new_pos)
                dispatched = True
                break
            assert dispatched, "graph deadlocked"
            # invariant: incremental sets == full recompute (ready agents)
            for aid in range(n):
                if not g.running[aid]:
                    assert g.blocked_by[aid] == full_blockers(aid), \
                        f"agent {aid} blockers diverged"
            g.validate()
