"""Region-sharded controller state: exact equivalence with the single
graph, the region planner's safety margin, and the million-agent memory
paths (sampled landmarks, capped BFS, streamed trace concatenation)."""

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.config import DependencyConfig, SchedulerConfig
from repro.core import DependencyRules, ShardedGraph, plan_regions, \
    run_replay, rules_for
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.space import GraphSpace
from repro.errors import SchedulingError
from repro.trace.generator import generate_scale_trace

from helpers import ring_space as _ring_space


def _fake_trace(positions_by_step: np.ndarray) -> SimpleNamespace:
    return SimpleNamespace(positions_by_step=positions_by_step)


class TestPlanRegions:
    def test_far_groups_split_close_groups_merge(self):
        rules = DependencyRules(DependencyConfig())
        n_steps = 10
        margin = rules.radius_p + (n_steps + 1) * rules.max_vel
        pos = np.zeros((n_steps + 1, 4, 2), dtype=np.int32)
        # Agents 0/1 together, 2/3 far beyond the margin; all static.
        pos[:, 0, 0] = 0
        pos[:, 1, 0] = 3
        pos[:, 2, 0] = 3 + int(margin) + 2
        pos[:, 3, 0] = 6 + int(margin) + 2
        shards = plan_regions(_fake_trace(pos), rules, 4)
        assert shards is not None
        assert sorted(sorted(s) for s in shards) == [[0, 1], [2, 3]]
        # Nudge the far pair inside the margin: one region, no sharding.
        pos[:, 2, 0] = 3 + int(margin) - 2
        pos[:, 3, 0] = 4 + int(margin) - 2
        assert plan_regions(_fake_trace(pos), rules, 4) is None

    def test_margin_covers_the_whole_trace_bbox(self):
        """A wanderer's *excursion* counts, not just its start tile."""
        rules = DependencyRules(DependencyConfig())
        n_steps = 6
        margin = rules.radius_p + (n_steps + 1) * rules.max_vel
        pos = np.zeros((n_steps + 1, 2, 2), dtype=np.int32)
        pos[:, 1, 0] = 2 * int(margin)  # far... at step 0
        pos[3, 0, 0] = int(margin)      # ...but 0 swings halfway over
        assert plan_regions(_fake_trace(pos), rules, 2) is None

    def test_graph_metric_regions_are_components(self):
        space = _ring_space(12)
        # Two disjoint ring copies: offset the second's node ids.
        adj = dict(space._adj)
        adj.update({(n + 100, 0): tuple((m + 100, 0) for m, _ in vs)
                    for (n, _), vs in space._adj.items()})
        two = GraphSpace(adj)
        rules = DependencyRules(
            DependencyConfig(radius_p=1.0, max_vel=1.0, metric="graph"),
            space=two)
        pos = np.zeros((5, 6, 2), dtype=np.int32)
        pos[:, :3, 0] = [0, 4, 8]
        pos[:, 3:, 0] = [100, 104, 108]
        shards = plan_regions(_fake_trace(pos), rules, 4)
        assert shards is not None
        assert sorted(sorted(s) for s in shards) == [[0, 1, 2], [3, 4, 5]]

    def test_balancing_is_deterministic_and_bounded(self):
        rules = DependencyRules(DependencyConfig())
        n_steps = 4
        margin = int(rules.radius_p + (n_steps + 1) * rules.max_vel)
        stride = 3 * margin
        # 7 singleton regions into 3 shards: LPT gives 3/2/2.
        pos = np.zeros((n_steps + 1, 7, 2), dtype=np.int32)
        for a in range(7):
            pos[:, a, 0] = a * stride
        shards = plan_regions(_fake_trace(pos), rules, 3)
        assert shards == plan_regions(_fake_trace(pos), rules, 3)
        assert sorted(len(s) for s in shards) == [2, 2, 3]
        assert sorted(sum(map(list, shards), [])) == list(range(7))
        assert all(s == sorted(s) for s in shards)

    def test_single_agent_and_max_shards_below_two(self):
        rules = DependencyRules(DependencyConfig())
        pos = np.zeros((3, 1, 2), dtype=np.int32)
        assert plan_regions(_fake_trace(pos), rules, 8) is None
        pos4 = np.zeros((3, 4, 2), dtype=np.int32)
        pos4[:, :, 0] = [0, 500, 1000, 1500]
        assert plan_regions(_fake_trace(pos4), rules, 1) is None
        assert plan_regions(_fake_trace(pos4), rules, 0) is None


def _mirror_commit_fuzz(rules, groups, moves, rng, iters=30):
    """Drive identical random commits through the single graph and a
    ShardedGraph over ``groups``; every observable must match exactly."""
    n = sum(len(g) for g in groups)
    positions = {}
    for g in groups:
        positions.update(g)
    init = np.array([positions[i] for i in range(n)], dtype=np.int64)
    single = SpatioTemporalGraph(rules, init)
    sharded = ShardedGraph(rules, init,
                           [sorted(g) for g in groups])
    assert sharded.n_shards == len(groups)

    for _ in range(iters):
        cluster = None
        order = sorted(range(n), key=lambda _: rng.random())
        for seed_aid in order:
            if single.running[seed_aid] or single.is_blocked(seed_aid):
                continue
            members = single.component_for(seed_aid, set())
            if any(single.is_blocked(m) for m in members):
                continue
            cluster = members
            break
        assert cluster is not None, "fuzz deadlocked"
        # The facade's component must be the same members (global ids).
        assert sharded.build_component(cluster[0], set()) == cluster
        single.mark_running(cluster)
        sharded.mark_running(cluster)
        new_pos = {m: moves(single.pos[m])[
            rng.integers(0, len(moves(single.pos[m])))] for m in cluster}
        r1 = single.commit(cluster, new_pos)
        r2 = sharded.commit(cluster, new_pos)
        assert r2.unblocked == r1.unblocked
        assert r2.neighbors == r1.neighbors
        assert {m: set(v) for m, v in r2.member_neighbors.items()} == \
            {m: set(v) for m, v in r1.member_neighbors.items()}
        assert sharded.min_step == single.min_step
        assert sharded.max_step == single.max_step
        for aid in range(n):
            assert sharded.step[aid] == single.step[aid]
            assert sharded.pos[aid] == single.pos[aid]
            assert sharded.running[aid] == single.running[aid]
            assert bool(sharded.blocked_by[aid]) == \
                bool(single.blocked_by[aid])
            assert sharded.blockers_of(aid) == single.blockers_of(aid)
            assert sharded.is_blocked(aid) == single.is_blocked(aid)
            if not single.running[aid]:
                assert sharded.compute_blockers(aid) == \
                    single.compute_blockers(aid)
                assert sharded.invocation_distance(aid) == \
                    single.invocation_distance(aid)
        assert sharded.snapshot() == single.snapshot()


class TestShardedGraphEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9), na=st.integers(2, 6),
           nb=st.integers(2, 6))
    def test_two_far_regions_coordinate(self, seed, na, nb):
        rng = FastRng(seed)
        rules = DependencyRules(DependencyConfig())
        # Boxes far beyond any threshold the fuzz can reach, and moves
        # clipped to each box so the regions stay provably independent.
        lo_a, hi_a = 0, 40
        lo_b, hi_b = 600, 640
        group_a = {i: (rng.integers(lo_a, hi_a), rng.integers(0, 40))
                   for i in range(na)}
        group_b = {na + i: (rng.integers(lo_b, hi_b), rng.integers(0, 40))
                   for i in range(nb)}

        def moves(pos):
            x, y = pos
            lo, hi = (lo_a, hi_a) if x < 300 else (lo_b, hi_b)
            out = [(x, y)]
            if x + 1 < hi:
                out.append((x + 1, y))
            if x - 1 >= lo:
                out.append((x - 1, y))
            out += [(x, y + 1), (x, y - 1)]
            return out

        _mirror_commit_fuzz(rules, [group_a, group_b], moves, rng)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(2, 5),
           v=st.integers(6, 14))
    def test_disjoint_components_graph_metric(self, seed, n, v):
        rng = FastRng(seed)
        base = _ring_space(v, chords=v // 3, seed=seed)
        adj = dict(base._adj)
        adj.update({(a + 1000, 0): tuple((b + 1000, 0) for b, _ in vs)
                    for (a, _), vs in base._adj.items()})
        space = GraphSpace(adj)
        rules = DependencyRules(
            DependencyConfig(radius_p=1.0, max_vel=1.0, metric="graph"),
            space=space)
        group_a = {i: (rng.integers(0, v), 0) for i in range(n)}
        group_b = {n + i: (1000 + rng.integers(0, v), 0) for i in range(n)}

        def moves(pos):
            return [pos, *space._adj[pos]]

        _mirror_commit_fuzz(rules, [group_a, group_b], moves, rng)

    def test_three_shards_with_blocking_laggard(self):
        """Deterministic deep-gap scenario: a laggard blocks its own
        region's leader while other regions sprint ahead — blocker sets
        and wake behavior must track the single graph exactly."""
        rules = DependencyRules(DependencyConfig())
        groups = [{0: (0, 0), 1: (6, 0)},
                  {2: (500, 0), 3: (506, 0)},
                  {4: (1000, 0)}]
        positions = {}
        for g in groups:
            positions.update(g)
        init = np.array([positions[i] for i in range(5)], dtype=np.int64)
        single = SpatioTemporalGraph(rules, init)
        sharded = ShardedGraph(rules, init, [sorted(g) for g in groups])
        # Advance 1, 3, and 4 repeatedly; 0 and 2 lag and eventually
        # block their region's runner. Positions never change.
        for _ in range(12):
            for aid in (1, 3, 4):
                if single.is_blocked(aid):
                    assert sharded.is_blocked(aid)
                    continue
                assert not sharded.is_blocked(aid)
                single.mark_running([aid])
                sharded.mark_running([aid])
                p = {aid: tuple(single.pos[aid])}
                r1 = single.commit([aid], p)
                r2 = sharded.commit([aid], p)
                assert r2.unblocked == r1.unblocked
            for aid in range(5):
                assert sharded.blockers_of(aid) == single.blockers_of(aid)
        assert single.is_blocked(1) and single.is_blocked(3)
        assert not single.is_blocked(4)
        # Laggards catch up: releases must propagate identically.
        for _ in range(12):
            for aid in (0, 2):
                if single.is_blocked(aid) or single.step[aid] >= 12:
                    continue
                single.mark_running([aid])
                sharded.mark_running([aid])
                p = {aid: tuple(single.pos[aid])}
                r1 = single.commit([aid], p)
                r2 = sharded.commit([aid], p)
                assert r2.unblocked == r1.unblocked
        assert not single.is_blocked(1)
        assert not sharded.is_blocked(1)

    def test_member_coverage_is_checked(self):
        rules = DependencyRules(DependencyConfig())
        init = np.zeros((4, 2), dtype=np.int64)
        init[:, 0] = [0, 10, 500, 510]
        with pytest.raises(ValueError):
            ShardedGraph(rules, init, [[0, 1], [2]])


class TestDriverEquivalence:
    """Sharded and single controllers replay bit-identically."""

    @pytest.mark.parametrize("scenario", ["smallville", "social-graph"])
    def test_replay_results_match(self, scenario):
        trace = generate_scale_trace(total_agents=75, n_steps=25,
                                     scenario=scenario, base_seed=11)
        base = SchedulerConfig(policy="metropolis",
                               validate_causality=True)
        r0 = run_replay(trace, base)
        r4 = run_replay(trace, replace(base, shards=4))
        assert r4.driver_stats.extra["shards"] > 1
        assert r0.driver_stats.extra["shards"] == 1
        assert r4.completion_time == r0.completion_time
        assert r4.driver_stats.blocked_events == \
            r0.driver_stats.blocked_events
        assert r4.driver_stats.unblock_events == \
            r0.driver_stats.unblock_events
        assert r4.driver_stats.clusters_dispatched == \
            r0.driver_stats.clusters_dispatched
        assert r4.n_tasks_completed == r0.n_tasks_completed
        assert r4.n_calls_completed == r0.n_calls_completed

    def test_speculative_policy_matches(self):
        trace = generate_scale_trace(total_agents=50, n_steps=20,
                                     scenario="smallville", base_seed=7)
        base = SchedulerConfig(policy="metropolis-spec",
                               validate_causality=True)
        r0 = run_replay(trace, base)
        r4 = run_replay(trace, replace(base, shards=4))
        assert r4.completion_time == r0.completion_time
        assert r4.n_tasks_completed == r0.n_tasks_completed

    def test_unshardable_workload_falls_back(self):
        # The default concatenated gutter is inside the safety margin,
        # so the planner must refuse and the driver keeps one graph.
        from repro.trace.generator import generate_concatenated_trace
        trace = generate_concatenated_trace(total_agents=50, n_steps=20,
                                            base_seed=3)
        r = run_replay(trace, SchedulerConfig(policy="metropolis",
                                              shards=4))
        assert r.driver_stats.extra["shards"] == 1


class TestScannedSlotsLocality:
    def test_banded_scan_touches_only_local_slots(self):
        """The ISSUE's O(local) gate: commit-driven scans in one corner
        of a wide world must not touch the far population's slots."""
        rules = DependencyRules(DependencyConfig())
        n_far = 400
        rng = FastRng(0)
        positions = {0: (0, 0), 1: (30, 0)}
        for i in range(n_far):
            positions[2 + i] = (5000 + rng.integers(0, 600),
                                rng.integers(0, 600))
        init = np.array([positions[i] for i in range(n_far + 2)],
                        dtype=np.int64)
        banded = SpatioTemporalGraph(rules, init)
        flat = SpatioTemporalGraph(rules, init, band_size=10**9)
        for g in (banded, flat):
            for _ in range(6):
                g.mark_running([1])
                g.commit([1], {1: (30, 0)})
        assert banded.scans == flat.scans > 0
        # The far 400 agents occupy hundreds of slots; a local scan may
        # touch only the scanner's own band neighborhood.
        assert flat.scanned_slots >= n_far // 2
        assert banded.scanned_slots <= 10 * banded.scans


class TestShardedAbort:
    """abort_running mirrors through every shard and the global view."""

    def _pair(self):
        rules = DependencyRules(DependencyConfig())
        init = np.array([(0, 0), (2, 0), (5000, 0), (5002, 0)],
                        dtype=np.int64)
        single = SpatioTemporalGraph(rules, init)
        sharded = ShardedGraph(rules, init, [[0, 1], [2, 3]])
        return single, sharded

    def test_abort_matches_single_graph(self):
        single, sharded = self._pair()
        for g in (single, sharded):
            g.mark_running([0, 1])
            g.mark_running([2, 3])
            g.abort_running([2, 3])
        for aid in range(4):
            assert sharded.running[aid] == single.running[aid]
            assert sharded.step[aid] == single.step[aid]
        assert not sharded.running[2] and not sharded.running[3]
        # Rolled-back members are redispatchable on their home shard and
        # the still-running cluster is untouched.
        assert sharded.build_component(2, set()) == [2, 3]
        assert sharded.running[0] and sharded.running[1]

    def test_abort_of_non_running_raises(self):
        _, sharded = self._pair()
        with pytest.raises(SchedulingError, match="not running"):
            sharded.abort_running([2])

    def test_abort_then_commit_round_trip(self):
        single, sharded = self._pair()
        for g in (single, sharded):
            g.mark_running([0, 1])
            g.abort_running([0, 1])
            g.mark_running([0, 1])
            g.commit([0, 1], {0: (0, 0), 1: (2, 0)})
        assert sharded.snapshot() == single.snapshot()
        assert sharded.min_step == single.min_step == 0
        assert sharded.max_step == single.max_step == 1
