"""Shared fixtures.

Traces are expensive to generate, so the suite shares a few session-scoped
ones; they are deterministic in the seed, so sharing cannot couple tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.config import ServingConfig
from repro.trace import generate_trace

from helpers import random_trace


@pytest.fixture(scope="session")
def synthetic_trace():
    """Random-walk trace: 6 agents, 40 steps, small calls (fast replays)."""
    return random_trace(seed=11)


@pytest.fixture(scope="session")
def morning_trace():
    """8 world agents over the waking ramp (6-8am), with real activity."""
    full = generate_trace(n_agents=8, n_steps=2960, seed=3)
    return full.window(2100, 2940)


@pytest.fixture(scope="session")
def day_trace():
    """The standard 25-agent full day (disk-cached across sessions)."""
    from repro.trace import cached_day_trace
    return cached_day_trace(seed=0)


@pytest.fixture()
def l4_serving():
    return ServingConfig(model="llama3-8b", gpu="l4", dp=1)
