"""Tests for the paper-motivated extensions: prefix caching (§4.1 note),
interactive/hybrid scheduling (§6), and the §3.1 worker pool."""

import pytest

from repro.config import SchedulerConfig, ServingConfig
from repro.core import run_replay
from repro.devent import Kernel
from repro.errors import ConfigError
from repro.serving import ServingEngine


class TestPrefixCache:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServingConfig(prefix_cache_hit_rate=1.0)
        with pytest.raises(ConfigError):
            ServingConfig(prefix_cache_hit_rate=-0.1)

    def test_cache_shortens_prefill(self):
        def makespan(hit):
            k = Kernel()
            engine = ServingEngine(k, ServingConfig(
                model="llama3-8b", gpu="l4", prefix_cache_hit_rate=hit))
            for _ in range(4):
                engine.generate(1200, 4)
            k.run()
            return engine.metrics.last_finish

        assert makespan(0.6) < makespan(0.0)

    def test_cache_speeds_up_replay(self, morning_trace):
        def run(hit):
            return run_replay(
                morning_trace, SchedulerConfig(policy="metropolis"),
                ServingConfig(model="llama3-8b", gpu="l4",
                              prefix_cache_hit_rate=hit)).completion_time

        base = run(0.0)
        cached = run(0.5)
        assert cached < base
        # Prefill is a minority of request time: the gain is bounded.
        assert cached > 0.5 * base

    def test_kv_reservation_unchanged(self):
        # The cache discounts compute, not memory (conservative).
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(
            model="llama3-8b", gpu="l4", prefix_cache_hit_rate=0.9))
        request = engine.generate(1000, 10)
        k.run()
        assert engine.replicas[0].kv.reserved_tokens == 0  # released
        assert request.prompt_tokens == 1000  # untouched


class TestInteractiveScheduling:
    def test_latencies_tracked(self, synthetic_trace, l4_serving):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis", interactive_agents=(0,)),
            l4_serving)
        lat = result.driver_stats.extra["interactive_latencies"]
        assert len(lat) == synthetic_trace.meta.n_steps
        assert all(v >= 0 for v in lat)

    def test_no_tracking_without_agents(self, synthetic_trace, l4_serving):
        result = run_replay(
            synthetic_trace, SchedulerConfig(policy="metropolis"),
            l4_serving)
        assert result.driver_stats.extra["interactive_latencies"] == []

    def test_boost_preserves_completion_of_all_tasks(self, synthetic_trace,
                                                     l4_serving):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis", interactive_agents=(0, 1),
                            num_workers=2),
            l4_serving)
        assert result.n_calls_completed == synthetic_trace.n_calls

    def test_boosted_requests_carry_negative_priority(self, synthetic_trace,
                                                      l4_serving):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis", interactive_agents=(0,)),
            l4_serving)
        assert any(r.priority < 0 for r in result.engine_metrics.records)

    def test_boost_off_measures_only(self, synthetic_trace, l4_serving):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis", interactive_agents=(0,),
                            interactive_boost=False),
            l4_serving)
        assert all(r.priority >= 0 for r in result.engine_metrics.records)
        assert result.driver_stats.extra["interactive_latencies"]


class TestOracleWorkerPool:
    def test_capped_oracle_completes(self, synthetic_trace, l4_serving):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="oracle", num_workers=1),
            l4_serving)
        assert result.n_calls_completed == synthetic_trace.n_calls

    def test_cap_slows_oracle(self, morning_trace, l4_serving):
        free = run_replay(morning_trace,
                          SchedulerConfig(policy="oracle", num_workers=0),
                          l4_serving)
        capped = run_replay(morning_trace,
                            SchedulerConfig(policy="oracle", num_workers=1),
                            l4_serving)
        assert capped.completion_time > free.completion_time
