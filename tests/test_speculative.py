"""Speculative OOO execution (§6): deterministic collision/disjoint
worlds, the speculation ledger invariant (also under mid-run faults),
and a spec-vs-plain-vs-lock-step-oracle equivalence fuzz."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SchedulerConfig, ServingConfig
from repro.core import run_replay
from repro.trace.generator import generate_scale_trace

from helpers import random_trace, trajectory_trace


def _run(trace, policy, collect_timeline=False, fault_hook=None, **kw):
    return run_replay(trace, SchedulerConfig(policy=policy, **kw),
                      ServingConfig(model="llama3-8b", gpu="l4", dp=1),
                      collect_timeline=collect_timeline,
                      fault_hook=fault_hook)


def _assert_ledger(extra):
    """Every speculation record ends in exactly one of retire /
    misspeculation / squash, and the O(changed rows) undo restores
    exactly the launched-but-never-retired snapshot rows — no more
    (whole-store replays would overshoot), no fewer (leaks)."""
    assert extra["speculations"] == (extra["spec_retires"]
                                     + extra["misspeculations"]
                                     + extra["squashes"])
    assert extra["spec_launched_members"] == \
        (extra["spec_retired_members"] + extra["rollback_rows"])
    assert extra["rollback_rows"] <= extra["spec_launched_members"]


def collision_course_trace(n_steps=24):
    """Head-on collision: a heavy laggard walks right to x=8 and
    retreats while the light agent walks left from 14 toward it.

    The light agent blocks *strictly inside* the laggard's §3.2 sphere
    (head-on closing speed 2 beats the sphere's max_vel growth), so the
    launch window provably contains the laggard's dip into the agent's
    perception radius — the oracle marks the record and its coupling
    kill is a misspeculation, not a conservative squash.
    """
    laggard = [(s if s <= 8 else max(0, 16 - s), 0)
               for s in range(n_steps + 1)]
    walker = [(max(6, 14 - s), 0) for s in range(n_steps + 1)]
    return trajectory_trace([laggard, walker],
                            [(6, 384, 32), (1, 32, 2)])


def disjoint_course_trace(n_steps=24):
    """Anchored but never racing: a heavy laggard sits at (0, 0), a
    light agent at (10, 0) — inside blocking range at gap >= 5 but
    outside the perception radius forever. Every speculation must
    retire; none may misspeculate or squash.
    """
    laggard = [(0, 0)] * (n_steps + 1)
    agent = [(10, 0)] * (n_steps + 1)
    return trajectory_trace([laggard, agent],
                            [(4, 256, 24), (1, 32, 2)])


class TestSpeculativeDriver:
    def test_completes_synthetic(self, synthetic_trace):
        result = _run(synthetic_trace, "metropolis-spec")
        assert result.n_calls_completed >= synthetic_trace.n_calls
        _assert_ledger(result.driver_stats.extra)

    def test_completes_world_trace(self, morning_trace):
        result = _run(morning_trace, "metropolis-spec")
        # Squashed/misspeculated chains re-execute: total engine calls may
        # exceed the trace's, but every task retires exactly once.
        assert result.n_tasks_completed == \
            morning_trace.meta.n_agents * morning_trace.meta.n_steps

    def test_speculation_happens(self, morning_trace):
        result = _run(morning_trace, "metropolis-spec")
        assert result.driver_stats.extra["speculations"] > 0
        assert result.driver_stats.extra["spec_retires"] > 0

    def test_causality_still_validates(self, synthetic_trace):
        result = _run(synthetic_trace, "metropolis-spec",
                      validate_causality=True)
        assert result.n_tasks_completed == \
            synthetic_trace.meta.n_agents * synthetic_trace.meta.n_steps

    def test_no_slower_than_metropolis(self, morning_trace):
        base = _run(morning_trace, "metropolis")
        spec = _run(morning_trace, "metropolis-spec")
        # Speculation hides blocked waiting; allow small scheduling noise.
        assert spec.completion_time <= base.completion_time * 1.02

    def test_budget_zero_equals_metropolis(self, synthetic_trace):
        base = _run(synthetic_trace, "metropolis")
        spec = _run(synthetic_trace, "metropolis-spec",
                    speculation_budget=0)
        assert spec.completion_time == pytest.approx(base.completion_time)
        assert spec.driver_stats.extra["speculations"] == 0

    def test_deterministic(self, synthetic_trace):
        a = _run(synthetic_trace, "metropolis-spec")
        b = _run(synthetic_trace, "metropolis-spec")
        assert a.completion_time == b.completion_time

    def test_dense_trace_squashes(self):
        """Crowded agents constantly join clusters mid-speculation."""
        trace = random_trace(seed=21, n_agents=10, n_steps=40,
                             width=12, height=12, p_call=0.5)
        result = _run(trace, "metropolis-spec", validate_causality=True)
        assert result.n_tasks_completed == 10 * 40
        extra = result.driver_stats.extra
        assert extra["squashes"] + extra["misspeculations"] > 0
        _assert_ledger(extra)

    def test_priority_off_still_correct(self):
        """The Table 1 priority ablation: ranking off changes which
        clusters launch, never what commits."""
        trace = random_trace(seed=9, n_agents=8, n_steps=30,
                             width=16, height=14, p_call=0.5)
        on = _run(trace, "metropolis-spec", validate_causality=True)
        off = _run(trace, "metropolis-spec", validate_causality=True,
                   speculation_priority=False,
                   speculation_adaptive=False)
        for r in (on, off):
            assert r.n_tasks_completed == 8 * 30
            _assert_ledger(r.driver_stats.extra)


class TestCollisionAndDisjointCourses:
    """Deterministic worlds with provable speculation outcomes."""

    def test_collision_course_misspeculates(self):
        result = _run(collision_course_trace(), "metropolis-spec",
                      validate_causality=True)
        extra = result.driver_stats.extra
        assert result.n_tasks_completed == 2 * 24
        # The laggard's trace provably enters the walker's radius inside
        # the launch window: the oracle-marked record dies as a
        # misspeculation (stale inputs), not a conservative squash.
        assert extra["misspeculations"] > 0
        assert extra["squashes"] == 0
        _assert_ledger(extra)
        # Exact recovery: every rolled-back member re-executed its
        # chains through the normal path, exactly once more.
        trace = collision_course_trace()
        assert result.n_calls_completed > trace.n_calls
        assert extra["rollback_rows"] == (extra["spec_launched_members"]
                                          - extra["spec_retired_members"])

    def test_disjoint_course_never_misspeculates(self):
        trace = disjoint_course_trace()
        result = _run(trace, "metropolis-spec", validate_causality=True)
        extra = result.driver_stats.extra
        assert result.n_tasks_completed == 2 * 24
        assert extra["speculations"] > 0
        assert extra["misspeculations"] == 0
        assert extra["squashes"] == 0
        assert extra["spec_retires"] == extra["speculations"]
        assert extra["rollback_rows"] == 0
        # No wasted work at all: the engine served exactly the trace.
        assert result.n_calls_completed == trace.n_calls
        _assert_ledger(extra)


def _per_agent_sequences(timeline, n_agents):
    """[(step, func_id), ...] per agent, in submission order."""
    seqs = {aid: [] for aid in range(n_agents)}
    for e in sorted(timeline.events, key=lambda e: (e.submit_time,
                                                    e.agent, e.step)):
        seqs[e.agent].append((e.step, e.func_id))
    return seqs


def _assert_spec_sequences_valid(trace, spec_seq):
    """Speculative re-execution may repeat a step's chain, but each
    (agent, step) must run k >= 1 whole copies of the trace's chain,
    in order, and steps stay non-decreasing per agent (the driver only
    ever speculates an agent's *current* step)."""
    n_steps = trace.meta.n_steps
    for aid, seq in spec_seq.items():
        steps = [s for s, _ in seq]
        assert steps == sorted(steps)
        by_step = {}
        for s, f in seq:
            by_step.setdefault(s, []).append(f)
        called_steps = [s for s in range(n_steps)
                        if trace.chain(aid, s)]
        assert sorted(by_step) == called_steps
        for s, funcs in by_step.items():
            chain = [f for f, _, _ in trace.chain(aid, s)]
            assert len(funcs) % len(chain) == 0
            k = len(funcs) // len(chain)
            assert funcs == chain * k


class TestSpecEquivalenceFuzz:
    """Spec vs plain OOO vs the lock-step oracle on random small
    worlds: identical committed world state, per-agent call sequences,
    and the speculation ledger — across coordinate and graph metrics,
    sharded and unsharded (4 cells x 50 seeds = 200 worlds)."""

    @pytest.mark.parametrize("scenario,shards", [
        ("smallville", 1), ("smallville", 4),
        ("social-graph", 1), ("social-graph", 4)])
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_matches_plain_and_oracle(self, scenario, shards, seed):
        trace = generate_scale_trace(total_agents=24, n_steps=10,
                                     scenario=scenario, base_seed=seed)
        base = SchedulerConfig(policy="metropolis-spec", shards=shards,
                               validate_causality=True)
        spec = run_replay(trace, base, collect_timeline=True)
        plain = run_replay(trace, replace(base, policy="metropolis"),
                           collect_timeline=True)
        sync = run_replay(trace, replace(base, policy="parallel-sync",
                                         shards=1),
                          collect_timeline=True)

        n, steps = trace.meta.n_agents, trace.meta.n_steps
        # Committed world state: every (agent, step) retires exactly
        # once under all three schedules; plain and the oracle serve
        # exactly the trace's calls.
        assert spec.n_tasks_completed == n * steps
        assert plain.n_tasks_completed == n * steps
        assert sync.n_tasks_completed == n * steps
        assert plain.n_calls_completed == trace.n_calls
        assert sync.n_calls_completed == trace.n_calls
        assert spec.n_calls_completed >= trace.n_calls

        # Per-agent call sequences: plain OOO reorders across agents
        # but never within one — it must match the lock-step oracle
        # bit for bit.
        plain_seq = _per_agent_sequences(plain.timeline, n)
        sync_seq = _per_agent_sequences(sync.timeline, n)
        assert plain_seq == sync_seq
        # Speculation may re-execute squashed chains; modulo those
        # whole-chain repeats the sequences are identical too.
        spec_seq = _per_agent_sequences(spec.timeline, n)
        _assert_spec_sequences_valid(trace, spec_seq)

        extra = spec.driver_stats.extra
        _assert_ledger(extra)
        # O(changed rows): the wasted engine calls are exactly the
        # rolled-back members' chains — undo never replays the world.
        if extra["rollback_rows"] == 0:
            assert spec.n_calls_completed == trace.n_calls

    def test_sharded_spec_equals_unsharded(self):
        trace = generate_scale_trace(total_agents=50, n_steps=15,
                                     scenario="smallville", base_seed=3)
        base = SchedulerConfig(policy="metropolis-spec",
                               validate_causality=True)
        r1 = run_replay(trace, base)
        r4 = run_replay(trace, replace(base, shards=4))
        assert r4.completion_time == r1.completion_time
        assert r4.n_tasks_completed == r1.n_tasks_completed
        assert r4.driver_stats.extra["speculations"] == \
            r1.driver_stats.extra["speculations"]


class TestSpeculationFeedback:
    """Satellite: the ledger feeds candidate *priority* — agents whose
    speculations misspeculated carry a decayed penalty that demotes
    their clusters in the wake x size ranking."""

    @staticmethod
    def _driver(trace, **kw):
        from repro.core.speculative import SpeculativeMetropolisDriver
        from repro.core.tasks import ChainExecutor
        from repro.devent import Kernel
        from repro.serving import ServingEngine

        kernel = Kernel()
        engine = ServingEngine(kernel, ServingConfig())
        config = SchedulerConfig(policy="metropolis-spec", **kw)
        executor = ChainExecutor(kernel, engine, trace, config.overhead)
        return SpeculativeMetropolisDriver(kernel, engine, trace, config,
                                           executor)

    def test_penalty_demotes_score(self):
        trace = disjoint_course_trace()
        drv = self._driver(trace)
        drv.graph.invocation_distance = lambda aid: 5.0
        assert drv._candidate_score([0, 1]) == pytest.approx(10.0)
        drv._spec_penalty[1] = 3.0  # worst member dominates
        assert drv._candidate_score([0, 1]) == pytest.approx(2.5)
        assert drv.stats.extra["spec_priority_demotions"] == 1

    def test_flag_off_ignores_penalty(self):
        trace = disjoint_course_trace()
        drv = self._driver(trace, speculation_feedback=False)
        drv.graph.invocation_distance = lambda aid: 5.0
        drv._spec_penalty[1] = 3.0
        assert drv._candidate_score([0, 1]) == pytest.approx(10.0)
        assert drv.stats.extra["spec_priority_demotions"] == 0

    def test_clean_retires_decay_the_penalty(self):
        trace = disjoint_course_trace()
        drv = self._driver(trace)
        drv._spec_penalty[1] = 2.0
        drv._spec_feedback([1], bad=False)
        assert drv._spec_penalty[1] == pytest.approx(1.0)
        drv._spec_feedback([1], bad=False)  # 0.5 -> dropped
        drv._spec_feedback([1], bad=False)
        assert 1 not in drv._spec_penalty
        drv._spec_feedback([1], bad=True)
        assert drv._spec_penalty[1] == pytest.approx(1.0)

    def test_ablation_on_misspeculating_worlds(self):
        """Flag on vs off over seeded dense worlds: the mechanism
        engages exactly under the flag, never changes committed state,
        and never increases wasted work (same candidates eventually
        launch; risky ones just go later)."""
        on_miss = off_miss = on_demos = 0
        for seed in range(6):
            trace = random_trace(seed=seed, n_agents=10, n_steps=40,
                                 width=12, height=12, p_call=0.5)
            on = _run(trace, "metropolis-spec", validate_causality=True)
            off = _run(trace, "metropolis-spec", validate_causality=True,
                       speculation_feedback=False)
            for r in (on, off):
                assert r.n_tasks_completed == 10 * 40
                _assert_ledger(r.driver_stats.extra)
            assert off.driver_stats.extra["spec_priority_demotions"] == 0
            on_miss += on.driver_stats.extra["misspeculations"]
            off_miss += off.driver_stats.extra["misspeculations"]
            on_demos += on.driver_stats.extra["spec_priority_demotions"]
        assert on_demos > 0
        assert on_miss <= off_miss


class TestSpecLedgerUnderFaults:
    """PR 8 fault injection: replica blackouts mid-run must reroute
    in-flight speculative chains without corrupting the ledger."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_ledger_survives_blackouts(self, seed):
        trace = random_trace(seed, n_agents=8, n_steps=30,
                             width=18, height=14, p_call=0.5)
        serving = ServingConfig(model="llama3-8b", gpu="l4", dp=2)
        clean = run_replay(trace,
                           SchedulerConfig(policy="metropolis-spec"),
                           serving)

        def hook(kernel, engine):
            kernel.call_at(clean.completion_time * 0.25,
                           engine.blackout_replica, 1)
            kernel.call_at(clean.completion_time * 0.6,
                           engine.blackout_replica, 0)

        result = run_replay(trace,
                            SchedulerConfig(policy="metropolis-spec",
                                            validate_causality=True),
                            serving, fault_hook=hook)
        assert result.n_tasks_completed == 8 * 30
        assert result.n_calls_completed >= trace.n_calls
        extra = result.driver_stats.extra
        _assert_ledger(extra)
        assert extra.get("replica_blackouts", 0) == 2
