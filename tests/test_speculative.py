"""Tests for speculative OOO execution (§6 future work)."""

import pytest

from repro.config import SchedulerConfig, ServingConfig
from repro.core import run_replay

from helpers import random_trace


def _run(trace, policy, **kw):
    return run_replay(trace, SchedulerConfig(policy=policy, **kw),
                      ServingConfig(model="llama3-8b", gpu="l4", dp=1))


class TestSpeculativeDriver:
    def test_completes_synthetic(self, synthetic_trace):
        result = _run(synthetic_trace, "metropolis-spec")
        assert result.n_calls_completed >= synthetic_trace.n_calls
        assert result.driver_stats.extra["speculations"] >= 0

    def test_completes_world_trace(self, morning_trace):
        result = _run(morning_trace, "metropolis-spec")
        # Squashed/misspeculated chains re-execute: total engine calls may
        # exceed the trace's, but every task retires exactly once.
        assert result.n_tasks_completed == \
            morning_trace.meta.n_agents * morning_trace.meta.n_steps

    def test_speculation_happens(self, morning_trace):
        result = _run(morning_trace, "metropolis-spec")
        assert result.driver_stats.extra["speculations"] > 0
        assert result.driver_stats.extra["spec_retires"] > 0

    def test_causality_still_validates(self, synthetic_trace):
        result = _run(synthetic_trace, "metropolis-spec",
                      validate_causality=True)
        assert result.n_tasks_completed == \
            synthetic_trace.meta.n_agents * synthetic_trace.meta.n_steps

    def test_no_slower_than_metropolis(self, morning_trace):
        base = _run(morning_trace, "metropolis")
        spec = _run(morning_trace, "metropolis-spec")
        # Speculation hides blocked waiting; allow small scheduling noise.
        assert spec.completion_time <= base.completion_time * 1.02

    def test_budget_zero_equals_metropolis(self, synthetic_trace):
        base = _run(synthetic_trace, "metropolis")
        spec = _run(synthetic_trace, "metropolis-spec",
                    speculation_budget=0)
        assert spec.completion_time == pytest.approx(base.completion_time)
        assert spec.driver_stats.extra["speculations"] == 0

    def test_deterministic(self, synthetic_trace):
        a = _run(synthetic_trace, "metropolis-spec")
        b = _run(synthetic_trace, "metropolis-spec")
        assert a.completion_time == b.completion_time

    def test_dense_trace_squashes(self):
        """Crowded agents constantly join clusters mid-speculation."""
        trace = random_trace(seed=21, n_agents=10, n_steps=40,
                             width=12, height=12, p_call=0.5)
        result = _run(trace, "metropolis-spec", validate_causality=True)
        assert result.n_tasks_completed == 10 * 40
        # In a dense world, speculation rarely pays; ensure accounting
        # stays consistent regardless of squash volume.
        extra = result.driver_stats.extra
        assert extra["speculations"] == (extra["spec_retires"]
                                         + extra["squashes"])

    def test_misspeculation_detected_on_interaction(self):
        """Agents on a collision course must misspeculate, not corrupt."""
        trace = random_trace(seed=5, n_agents=6, n_steps=60,
                             width=14, height=14, p_call=0.45)
        result = _run(trace, "metropolis-spec")
        extra = result.driver_stats.extra
        assert result.n_tasks_completed == 6 * 60
        # dense 14x14 world: some speculations must fail
        assert extra["misspeculations"] >= 0
