"""Tests for the trace schema, generation, io and statistics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import (Trace, compute_stats, export_jsonl,
                         generate_concatenated_trace, generate_trace,
                         import_jsonl, load_trace, save_trace)
from repro.trace.schema import TraceMeta, concat_traces

from helpers import random_trace


class TestTraceSchema:
    def test_shapes_validated(self):
        meta = TraceMeta(n_agents=2, n_steps=5, seed=0, width=10, height=10)
        with pytest.raises(TraceError):
            Trace(meta, np.zeros((2, 4, 2), dtype=np.int16),
                  *[np.zeros(0, dtype=np.int32)] * 5)

    def test_call_bounds_validated(self):
        meta = TraceMeta(n_agents=2, n_steps=5, seed=0, width=10, height=10)
        pos = np.zeros((2, 6, 2), dtype=np.int16)
        bad_step = np.array([7], dtype=np.int32)
        ok = np.array([0], dtype=np.int32)
        with pytest.raises(TraceError):
            Trace(meta, pos, bad_step, ok, ok.astype(np.int16), ok + 10,
                  ok + 1)

    def test_zero_output_rejected(self):
        meta = TraceMeta(n_agents=1, n_steps=2, seed=0, width=5, height=5)
        pos = np.zeros((1, 3, 2), dtype=np.int16)
        z = np.array([0], dtype=np.int32)
        with pytest.raises(TraceError):
            Trace(meta, pos, z, z, z.astype(np.int16), z + 10, z)

    def test_speed_limit_enforced(self):
        meta = TraceMeta(n_agents=1, n_steps=1, seed=0, width=10, height=10)
        pos = np.zeros((1, 2, 2), dtype=np.int16)
        pos[0, 1] = (3, 0)  # jumped 3 tiles
        with pytest.raises(TraceError):
            Trace(meta, pos, *[np.zeros(0, dtype=np.int32)] * 5)

    def test_chain_order_preserved(self, synthetic_trace):
        t = synthetic_trace
        for aid in range(t.meta.n_agents):
            for step in range(t.meta.n_steps):
                sl = t.chain_slice(aid, step)
                assert np.all(t.call_agent[sl] == aid)
                assert np.all(t.call_step[sl] == step)

    def test_chain_lengths_total(self, synthetic_trace):
        assert synthetic_trace.chain_lengths().sum() == \
            synthetic_trace.n_calls

    def test_pos_accessor(self, synthetic_trace):
        x, y = synthetic_trace.pos(0, 0)
        assert isinstance(x, int) and isinstance(y, int)

    def test_window_slices_calls_and_positions(self, synthetic_trace):
        t = synthetic_trace
        w = t.window(10, 30)
        assert w.meta.n_steps == 20
        assert w.meta.base_step == 10
        assert w.positions.shape == (t.meta.n_agents, 21, 2)
        assert np.array_equal(w.positions[:, 0], t.positions[:, 10])
        mask = (t.call_step >= 10) & (t.call_step < 30)
        assert w.n_calls == int(mask.sum())

    def test_window_bad_range(self, synthetic_trace):
        with pytest.raises(TraceError):
            synthetic_trace.window(30, 10)
        with pytest.raises(TraceError):
            synthetic_trace.window(0, 10_000)

    def test_concat_offsets_positions(self):
        a = random_trace(seed=1, n_agents=3, n_steps=10)
        b = random_trace(seed=2, n_agents=3, n_steps=10)
        c = concat_traces([a, b], x_stride=100)
        assert c.meta.n_agents == 6
        assert c.meta.segments == 2
        assert np.array_equal(c.positions[:3, :, 0], a.positions[:, :, 0])
        assert np.array_equal(c.positions[3:, :, 0],
                              b.positions[:, :, 0] + 100)
        assert c.n_calls == a.n_calls + b.n_calls

    def test_concat_requires_same_steps(self):
        a = random_trace(seed=1, n_steps=10)
        b = random_trace(seed=2, n_steps=20)
        with pytest.raises(TraceError):
            concat_traces([a, b], x_stride=100)

    def test_concat_empty(self):
        with pytest.raises(TraceError):
            concat_traces([], x_stride=10)


def _memmap_backed(arr):
    """True when ``arr`` is (a view of) a disk-backed memmap."""
    while arr is not None:
        if isinstance(arr, np.memmap):
            return True
        arr = arr.base
    return False


class TestMemmapStore:
    """REPRO_TRACE_MEMMAP_MB routes big position stores to disk-backed
    memmaps; every trace operation must behave identically there."""

    def test_alloc_positions_threshold(self, monkeypatch):
        from repro.trace.schema import _alloc_positions
        monkeypatch.setenv("REPRO_TRACE_MEMMAP_MB", "0")
        assert isinstance(_alloc_positions((4, 3, 2), np.int32),
                          np.memmap)
        monkeypatch.setenv("REPRO_TRACE_MEMMAP_MB", "-1")
        assert not isinstance(_alloc_positions((4, 3, 2), np.int32),
                              np.memmap)

    def test_npz_roundtrip_through_memmap(self, synthetic_trace,
                                          tmp_path, monkeypatch):
        path = tmp_path / "t.npz"
        save_trace(synthetic_trace, path)
        monkeypatch.setenv("REPRO_TRACE_MEMMAP_MB", "0")
        loaded = load_trace(path)
        assert _memmap_backed(loaded.positions_by_step)
        assert np.array_equal(loaded.positions_by_step,
                              synthetic_trace.positions_by_step)
        for name in ("call_step", "call_agent", "call_func",
                     "call_in", "call_out"):
            assert np.array_equal(getattr(loaded, name),
                                  getattr(synthetic_trace, name)), name

    def test_window_and_concat_on_memmap_store(self, monkeypatch):
        a = random_trace(seed=3, n_agents=3, n_steps=10)
        b = random_trace(seed=4, n_agents=3, n_steps=10)
        ram = concat_traces([a, b], x_stride=100)
        monkeypatch.setenv("REPRO_TRACE_MEMMAP_MB", "0")
        mapped = concat_traces([a, b], x_stride=100)
        assert _memmap_backed(mapped.positions_by_step)
        assert np.array_equal(mapped.positions_by_step,
                              ram.positions_by_step)
        w_ram, w_map = ram.window(2, 8), mapped.window(2, 8)
        assert np.array_equal(w_map.positions_by_step,
                              w_ram.positions_by_step)
        assert w_map.n_calls == w_ram.n_calls
        assert np.array_equal(w_map.call_step, w_ram.call_step)


class TestGenerator:
    def test_deterministic(self):
        a = generate_trace(4, 300, seed=5)
        b = generate_trace(4, 300, seed=5)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.call_in, b.call_in)

    def test_seed_changes_output(self):
        a = generate_trace(4, 2600, seed=5)
        b = generate_trace(4, 2600, seed=6)
        assert not (np.array_equal(a.positions, b.positions)
                    and np.array_equal(a.call_in, b.call_in))

    def test_needs_agents(self):
        with pytest.raises(TraceError):
            generate_trace(0, 10)

    def test_concatenated_sizes(self):
        t = generate_concatenated_trace(60, n_steps=50)
        assert t.meta.n_agents == 60
        assert t.meta.segments == 3  # 25 + 25 + 10
        # Segments are spatially disjoint.
        assert t.positions[:25, :, 0].max() < 141
        assert t.positions[25:50, :, 0].min() >= 141

    def test_small_request_single_ville(self):
        t = generate_concatenated_trace(10, n_steps=50)
        assert t.meta.segments == 1


class TestTraceIO:
    def test_npz_roundtrip(self, synthetic_trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(synthetic_trace, path)
        loaded = load_trace(path)
        assert loaded.meta == synthetic_trace.meta
        assert np.array_equal(loaded.positions, synthetic_trace.positions)
        assert np.array_equal(loaded.call_in, synthetic_trace.call_in)

    def test_load_missing(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_npz_step_major_store_roundtrips(self, synthetic_trace,
                                             tmp_path):
        """The on-disk layout is the canonical step-major array."""
        path = tmp_path / "t.npz"
        save_trace(synthetic_trace, path)
        with np.load(path, allow_pickle=False) as data:
            assert "positions_sa" in data.files
            assert data["positions_sa"].shape == \
                synthetic_trace.positions_by_step.shape
        loaded = load_trace(path)
        assert np.array_equal(loaded.positions_by_step,
                              synthetic_trace.positions_by_step)

    def test_load_legacy_agent_major_npz(self, synthetic_trace, tmp_path):
        """Caches written before the step-major store still load."""
        import json as _json
        from dataclasses import asdict

        path = tmp_path / "legacy.npz"
        t = synthetic_trace
        np.savez_compressed(
            path,
            meta=_json.dumps(asdict(t.meta)),
            positions=np.ascontiguousarray(t.positions),
            call_step=t.call_step, call_agent=t.call_agent,
            call_func=t.call_func, call_in=t.call_in,
            call_out=t.call_out)
        loaded = load_trace(path)
        assert np.array_equal(loaded.positions_by_step,
                              t.positions_by_step)

    def test_jsonl_roundtrip(self, synthetic_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        export_jsonl(synthetic_trace, path)
        loaded = import_jsonl(path)
        assert loaded.meta.n_agents == synthetic_trace.meta.n_agents
        assert loaded.n_calls == synthetic_trace.n_calls
        assert np.array_equal(loaded.positions,
                              synthetic_trace.positions.astype(np.int32))
        assert np.array_equal(np.sort(loaded.call_in),
                              np.sort(synthetic_trace.call_in))

    def test_jsonl_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "call", "step": 0, "agent": 0, '
                        '"func": "utterance", "input_tokens": 5, '
                        '"output_tokens": 2}\n')
        with pytest.raises(TraceError):
            import_jsonl(path)


class TestStats:
    def test_basic_fields(self, morning_trace):
        s = compute_stats(morning_trace)
        assert s.total_calls == morning_trace.n_calls
        assert s.n_agents == morning_trace.meta.n_agents
        assert 0 < s.idle_fraction < 1
        assert s.mean_chain_length >= 1.0

    def test_calls_per_hour_sums(self, morning_trace):
        s = compute_stats(morning_trace)
        assert int(s.calls_per_hour.sum()) == s.total_calls

    def test_empty_window(self, day_trace):
        night = day_trace.window(60, 120)  # ~00:10-00:20, all asleep
        s = compute_stats(night)
        assert s.total_calls == 0
        assert s.mean_input_tokens == 0.0


class TestDayCalibration:
    """The generated day must match the paper's published trace statistics
    (§4.1) within reproduction tolerance."""

    def test_total_calls(self, day_trace):
        s = compute_stats(day_trace)
        assert 45_000 <= s.total_calls <= 70_000  # paper: 56.7k

    def test_token_means(self, day_trace):
        s = compute_stats(day_trace)
        assert 550 <= s.mean_input_tokens <= 750  # paper: 642.6
        assert 15 <= s.mean_output_tokens <= 30  # paper: 21.9

    def test_dependency_sparsity(self, day_trace):
        s = compute_stats(day_trace)
        assert 1.2 <= s.mean_dependency_agents <= 2.6  # paper: 1.85

    def test_diurnal_shape(self, day_trace):
        s = compute_stats(day_trace)
        hours = s.calls_per_hour
        assert hours[1] == hours[2] == hours[3] == 0  # asleep 1-4am
        assert 400 <= hours[6] <= 1400  # quiet hour, paper ~800
        assert 3000 <= hours[12] <= 6500  # busy hour, paper ~5000
        assert hours[12] > hours[6]

    def test_chains_heavy_tailed(self, day_trace):
        lengths = day_trace.chain_lengths()
        busy = lengths[lengths > 0]
        assert busy.max() >= 10  # conversations produce long chains
        assert np.percentile(busy, 50) <= 4  # most steps are short
