"""Tests for §3.4 geo-clustering and the spatial index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (SpatialIndex, brute_force_clustering,
                                   geo_clustering)
from repro.core.space import EuclideanSpace, GraphSpace


class TestSpatialIndex:
    def setup_method(self):
        self.idx = SpatialIndex(EuclideanSpace(), cell=5.0)

    def test_insert_and_query(self):
        self.idx.insert("a", (0, 0))
        self.idx.insert("b", (3, 4))
        self.idx.insert("c", (30, 30))
        assert sorted(self.idx.query((0, 0), 5.0)) == ["a", "b"]

    def test_query_inclusive_boundary(self):
        self.idx.insert("a", (5, 0))
        assert self.idx.query((0, 0), 5.0) == ["a"]
        assert self.idx.query((0, 0), 4.999) == []

    def test_move(self):
        self.idx.insert("a", (0, 0))
        self.idx.move("a", (50, 50))
        assert self.idx.query((0, 0), 10.0) == []
        assert self.idx.query((50, 50), 1.0) == ["a"]

    def test_remove(self):
        self.idx.insert("a", (0, 0))
        self.idx.remove("a")
        assert "a" not in self.idx
        assert len(self.idx) == 0

    def test_reinsert_replaces(self):
        self.idx.insert("a", (0, 0))
        self.idx.insert("a", (20, 20))
        assert len(self.idx) == 1
        assert self.idx.position("a") == (20, 20)

    def test_bad_cell(self):
        with pytest.raises(ValueError):
            SpatialIndex(EuclideanSpace(), cell=0)

    def test_graph_space_linear_scan(self):
        adj = {i: [i + 1] for i in range(5)}
        adj[5] = []
        for k in adj:
            adj[k] = list(adj[k]) + [k - 1] if k > 0 else list(adj[k])
        idx = SpatialIndex(GraphSpace(adj), cell=1.0)
        idx.insert("x", 0)
        idx.insert("y", 3)
        assert idx.query(0, 3.0) == ["x", "y"] or \
            sorted(idx.query(0, 3.0)) == ["x", "y"]
        assert idx.query(0, 1.0) == ["x"]


class TestGeoClustering:
    def test_singletons_when_far(self):
        clusters = geo_clustering(
            [0, 1, 2], [(0, 0), (100, 0), (200, 0)], EuclideanSpace(), 5.0)
        assert clusters == [[0], [1], [2]]

    def test_pairs_within_threshold(self):
        clusters = geo_clustering(
            [0, 1, 2], [(0, 0), (3, 0), (100, 0)], EuclideanSpace(), 5.0)
        assert clusters == [[0, 1], [2]]

    def test_transitive_chaining(self):
        # 0-1 close, 1-2 close, 0-2 far: all one cluster.
        clusters = geo_clustering(
            [0, 1, 2], [(0, 0), (4, 0), (8, 0)], EuclideanSpace(), 5.0)
        assert clusters == [[0, 1, 2]]

    def test_empty(self):
        assert geo_clustering([], [], EuclideanSpace(), 5.0) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            geo_clustering([0, 1], [(0, 0)], EuclideanSpace(), 5.0)

    def test_every_agent_exactly_once(self):
        ids = list(range(10))
        positions = [(i * 3, 0) for i in ids]
        clusters = geo_clustering(ids, positions, EuclideanSpace(), 5.0)
        flattened = sorted(aid for c in clusters for aid in c)
        assert flattened == ids

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), n=st.integers(1, 40),
           threshold=st.floats(0.5, 12.0))
    def test_matches_brute_force(self, seed, n, threshold):
        from repro._util import FastRng
        rng = FastRng(seed)
        ids = list(range(n))
        positions = [(rng.integers(0, 40), rng.integers(0, 40))
                     for _ in range(n)]
        space = EuclideanSpace()
        fast = geo_clustering(ids, positions, space, threshold)
        slow = brute_force_clustering(ids, positions, space, threshold)
        assert fast == slow
