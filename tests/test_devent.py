"""Tests for the discrete-event kernel and virtual queues."""

import pytest

from repro.devent import Gate, Kernel, Timeout, VirtualPriorityQueue
from repro.errors import KernelError


class TestKernelScheduling:
    def test_starts_at_zero(self):
        assert Kernel().now == 0.0

    def test_call_in_advances_clock(self):
        k = Kernel()
        seen = []
        k.call_in(5.0, lambda: seen.append(k.now))
        k.run()
        assert seen == [5.0]
        assert k.now == 5.0

    def test_events_ordered_by_time(self):
        k = Kernel()
        order = []
        k.call_in(3.0, order.append, "b")
        k.call_in(1.0, order.append, "a")
        k.call_in(7.0, order.append, "c")
        k.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break_at_equal_times(self):
        k = Kernel()
        order = []
        for tag in range(5):
            k.call_at(1.0, order.append, tag)
        k.run()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        k = Kernel()
        seen = []

        def outer():
            seen.append(("outer", k.now))
            k.call_in(2.0, inner)

        def inner():
            seen.append(("inner", k.now))

        k.call_in(1.0, outer)
        k.run()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_rejects_past_scheduling(self):
        k = Kernel()
        k.call_in(5.0, lambda: None)
        k.run()
        with pytest.raises(KernelError):
            k.call_at(1.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(KernelError):
            Kernel().call_in(-1.0, lambda: None)

    def test_cancel(self):
        k = Kernel()
        seen = []
        ev = k.call_in(1.0, seen.append, "x")
        ev.cancel()
        k.run()
        assert seen == []

    def test_cancel_one_of_many(self):
        k = Kernel()
        seen = []
        k.call_in(1.0, seen.append, "a")
        ev = k.call_in(2.0, seen.append, "b")
        k.call_in(3.0, seen.append, "c")
        ev.cancel()
        k.run()
        assert seen == ["a", "c"]

    def test_run_until(self):
        k = Kernel()
        seen = []
        k.call_in(1.0, seen.append, "a")
        k.call_in(10.0, seen.append, "b")
        k.run(until=5.0)
        assert seen == ["a"]
        assert k.now == 5.0
        k.run()
        assert seen == ["a", "b"]

    def test_step_runs_single_event(self):
        k = Kernel()
        seen = []
        k.call_in(1.0, seen.append, 1)
        k.call_in(2.0, seen.append, 2)
        assert k.step()
        assert seen == [1]
        assert k.step()
        assert not k.step()

    def test_empty(self):
        k = Kernel()
        assert k.empty()
        ev = k.call_in(1.0, lambda: None)
        assert not k.empty()
        ev.cancel()
        assert k.empty()

    def test_no_reentrant_run(self):
        k = Kernel()

        def bad():
            k.run()

        k.call_in(1.0, bad)
        with pytest.raises(KernelError):
            k.run()


class TestProcesses:
    def test_timeout_sequence(self):
        k = Kernel()
        marks = []

        def proc():
            marks.append(k.now)
            yield Timeout(2.0)
            marks.append(k.now)
            yield Timeout(3.0)
            marks.append(k.now)

        k.process(proc())
        k.run()
        assert marks == [0.0, 2.0, 5.0]

    def test_gate_wakes_waiters(self):
        k = Kernel()
        gate = Gate(k)
        got = []

        def waiter():
            value = yield gate
            got.append((k.now, value))

        k.process(waiter())
        k.process(waiter())
        k.call_in(4.0, gate.fire, "ready")
        k.run()
        assert got == [(4.0, "ready"), (4.0, "ready")]

    def test_fired_gate_resumes_immediately(self):
        k = Kernel()
        gate = Gate(k)
        gate.fire(7)
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        k.process(waiter())
        k.run()
        assert got == [7]

    def test_gate_fires_once(self):
        k = Kernel()
        gate = Gate(k)
        gate.fire()
        with pytest.raises(KernelError):
            gate.fire()

    def test_process_done_gate(self):
        k = Kernel()
        results = []

        def child():
            yield Timeout(1.0)
            return "value"

        def parent():
            proc = k.process(child())
            value = yield proc
            results.append((k.now, value))

        k.process(parent())
        k.run()
        assert results == [(1.0, "value")]

    def test_bad_yield_raises(self):
        k = Kernel()

        def proc():
            yield 42

        k.process(proc())
        with pytest.raises(KernelError):
            k.run()


class TestVirtualPriorityQueue:
    def test_priority_order(self):
        k = Kernel()
        q = VirtualPriorityQueue(k, priority=True)
        got = []
        q.put("low", priority=5.0)
        q.put("high", priority=1.0)
        q.get(got.append)
        q.get(got.append)
        k.run()
        assert got == ["high", "low"]

    def test_fifo_when_priority_disabled(self):
        k = Kernel()
        q = VirtualPriorityQueue(k, priority=False)
        got = []
        q.put("first", priority=5.0)
        q.put("second", priority=1.0)
        q.get(got.append)
        q.get(got.append)
        k.run()
        assert got == ["first", "second"]

    def test_getter_waits_for_put(self):
        k = Kernel()
        q = VirtualPriorityQueue(k)
        got = []
        q.get(lambda item: got.append((k.now, item)))
        k.call_in(3.0, q.put, "x")
        k.run()
        assert got == [(3.0, "x")]

    def test_get_nowait(self):
        k = Kernel()
        q = VirtualPriorityQueue(k)
        assert q.get_nowait() is None
        q.put("a", priority=2.0)
        q.put("b", priority=1.0)
        assert q.get_nowait() == "b"
        assert len(q) == 1

    def test_peek_priority(self):
        k = Kernel()
        q = VirtualPriorityQueue(k)
        assert q.peek_priority() is None
        q.put("a", priority=2.5)
        assert q.peek_priority() == 2.5
