"""Tests for the SmallVille world substrate: grid, pathfinding, personas,
memory stream, behavior loop and conversations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util import rng_for
from repro.config import STEPS_PER_DAY
from repro.errors import WorldError
from repro.world import (BehaviorModel, GridWorld, Venue,
                         build_smallville, make_personas)
from repro.world.behavior import FUNC_INDEX, FUNCS
from repro.world.memory_stream import MemoryEvent, MemoryStream
from repro.world.pathfind import PathPlanner, astar
from repro.world.persona import SOCIAL_VENUES


class TestGridWorld:
    def test_dimensions_validated(self):
        with pytest.raises(WorldError):
            GridWorld(0, 5)

    def test_walkable_default(self):
        w = GridWorld(10, 10)
        assert w.is_walkable(0, 0)
        assert w.is_walkable(9, 9)
        assert not w.is_walkable(10, 0)
        assert not w.is_walkable(-1, 0)

    def test_wall_rect_with_door(self):
        w = GridWorld(10, 10)
        w.add_wall_rect(2, 2, 6, 6, doors=[(4, 6)])
        assert not w.is_walkable(2, 2)
        assert not w.is_walkable(6, 4)
        assert w.is_walkable(4, 6)  # the door
        assert w.is_walkable(4, 4)  # interior untouched

    def test_venue_walls_and_interior(self):
        w = GridWorld(20, 20)
        w.add_venue(Venue("Shop", 5, 5, 9, 9))
        venue = w.venue("Shop")
        for x, y in venue.tiles():
            assert w.is_walkable(x, y)
        assert not w.is_walkable(4, 4)  # corner wall

    def test_duplicate_venue_rejected(self):
        w = GridWorld(20, 20)
        w.add_venue(Venue("A", 5, 5, 6, 6))
        with pytest.raises(WorldError):
            w.add_venue(Venue("A", 8, 8, 9, 9))

    def test_venue_at(self):
        w = GridWorld(20, 20)
        w.add_venue(Venue("A", 5, 5, 9, 9))
        assert w.venue_at(6, 6).name == "A"
        assert w.venue_at(1, 1) is None

    def test_unknown_venue(self):
        with pytest.raises(WorldError):
            GridWorld(5, 5).venue("Nope")

    def test_bad_venue_bounds(self):
        with pytest.raises(WorldError):
            Venue("bad", 5, 5, 4, 9)

    def test_neighbors_respect_walls(self):
        w = GridWorld(10, 10)
        w.walkable[5, 5] = False  # (x=5, y=5)
        assert (5, 5) not in w.neighbors(5, 4)

    def test_random_walkable_tile_in_venue(self):
        w = GridWorld(30, 30)
        w.add_venue(Venue("A", 10, 10, 14, 14))
        rng = rng_for(0, "t")
        for _ in range(20):
            x, y = w.random_walkable_tile(rng, w.venue("A"))
            assert w.venue("A").contains(x, y)


class TestSmallville:
    def test_builds_with_26_homes(self):
        world, homes = build_smallville()
        assert len(homes) == 26
        assert world.width == 140 and world.height == 100

    def test_social_venues_exist(self):
        world, _ = build_smallville()
        for name in SOCIAL_VENUES:
            assert name in world.venues

    def test_fully_connected(self):
        world, _ = build_smallville()
        planner = PathPlanner(world)
        field = planner.distance_field(world.venue("Hobbs Cafe").center)
        reachable = (field < np.iinfo(np.int32).max).sum()
        assert reachable == world.walkable.sum()


class TestPathfinding:
    def setup_method(self):
        self.world, _ = build_smallville()
        self.planner = PathPlanner(self.world)

    def test_path_endpoints(self):
        start = self.world.venue("House 0").center
        goal = self.world.venue("Hobbs Cafe").center
        path = self.planner.path(start, goal)
        assert path[0] == start and path[-1] == goal

    def test_path_steps_are_unit_and_walkable(self):
        start = self.world.venue("House 3").center
        goal = self.world.venue("Willow Market").center
        path = self.planner.path(start, goal)
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1
            assert self.world.is_walkable(x1, y1)

    def test_matches_astar_length(self):
        start = self.world.venue("House 1").center
        goal = self.world.venue("The Rose Bar").center
        bfs_path = self.planner.path(start, goal)
        astar_path = astar(self.world, start, goal)
        assert len(bfs_path) == len(astar_path)  # both shortest

    def test_next_step_at_goal(self):
        tile = self.world.venue("Johnson Park").center
        assert self.planner.next_step(tile, tile) == tile

    def test_distance_symmetry_of_length(self):
        a = self.world.venue("House 2").center
        b = self.world.venue("Dorm Pharmacy").center
        assert self.planner.distance(a, b) == self.planner.distance(b, a)

    def test_unwalkable_goal_rejected(self):
        assert not self.world.is_walkable(3, 3)  # House 0's wall corner
        with pytest.raises(WorldError):
            self.planner.distance_field((3, 3))

    def test_unreachable_raises(self):
        w = GridWorld(10, 10)
        w.add_wall_rect(3, 3, 7, 7)  # sealed box, no door
        planner = PathPlanner(w)
        with pytest.raises(WorldError):
            planner.distance((0, 0), (5, 5))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_pairs_match_astar(self, seed):
        rng = rng_for(seed, "pp")
        start = self.world.random_walkable_tile(rng)
        goal = self.world.random_walkable_tile(rng)
        bfs = self.planner.path(start, goal)
        ast = astar(self.world, start, goal)
        assert len(bfs) == len(ast)


class TestPersonas:
    def test_deterministic(self):
        a = make_personas(5, seed=1, homes=["House 0", "House 1"])
        b = make_personas(5, seed=1, homes=["House 0", "House 1"])
        assert a == b

    def test_seed_changes_personas(self):
        a = make_personas(5, seed=1, homes=["House 0"])
        b = make_personas(5, seed=2, homes=["House 0"])
        assert a != b

    def test_wake_before_sleep(self):
        for p in make_personas(20, seed=3, homes=["House 0"]):
            assert 0 < p.wake_step < p.sleep_step < STEPS_PER_DAY

    def test_schedule_starts_asleep(self):
        p = make_personas(1, seed=0, homes=["House 0"])[0]
        assert p.block_at(0).activity == "sleeping"

    def test_block_lookup_progression(self):
        p = make_personas(1, seed=0, homes=["House 0"])[0]
        lunch_block = p.block_at(int(12.5 * 360))
        assert lunch_block.activity in ("lunch", "working")

    def test_unique_homes_up_to_pool(self):
        homes = [f"House {i}" for i in range(26)]
        personas = make_personas(25, seed=0, homes=homes)
        assigned = [p.home for p in personas]
        assert len(set(assigned)) == 25


class TestMemoryStream:
    def _event(self, step, kw=("a",), importance=0.5, tokens=30):
        return MemoryEvent(step=step, kind="observation",
                           keywords=frozenset(kw), importance=importance,
                           tokens=tokens)

    def test_add_and_len(self):
        m = MemoryStream()
        m.add(self._event(0))
        assert len(m) == 1

    def test_window_bound(self):
        m = MemoryStream(window=8)
        for i in range(20):
            m.add(self._event(i))
        assert len(m) == 8

    def test_recency_preferred(self):
        m = MemoryStream()
        m.add(self._event(0))
        m.add(self._event(900))
        top = m.retrieve(1000, frozenset(), top_k=1)
        assert top[0].step == 900

    def test_relevance_preferred(self):
        m = MemoryStream()
        m.add(self._event(99, kw=("cats",)))
        m.add(self._event(100, kw=("dogs",)))
        top = m.retrieve(101, frozenset({"cats"}), top_k=1)
        assert "cats" in top[0].keywords

    def test_importance_breaks_ties(self):
        m = MemoryStream()
        m.add(self._event(50, importance=0.1))
        m.add(self._event(50, importance=0.9))
        top = m.retrieve(51, frozenset(), top_k=1)
        assert top[0].importance == 0.9

    def test_retrieved_tokens_sums_topk(self):
        m = MemoryStream()
        for i in range(4):
            m.add(self._event(i, tokens=10))
        assert m.retrieved_tokens(5, frozenset(), top_k=2) == 20
        assert m.retrieved_tokens(5, frozenset(), top_k=10) == 40

    def test_reflection_counter(self):
        m = MemoryStream()
        m.add(self._event(0, importance=0.7))
        assert m.importance_since_reflection == pytest.approx(0.7)
        m.reset_reflection_counter()
        assert m.importance_since_reflection == 0.0


def _make_model(n_agents=6, seed=5):
    world, homes = build_smallville()
    personas = make_personas(n_agents, seed=seed, homes=homes)
    return BehaviorModel(world, personas, seed=seed)


class TestBehaviorModel:
    def test_agents_spawn_at_home(self):
        model = _make_model()
        for agent in model.agents:
            home = model.world.venue(agent.persona.home)
            assert home.contains(*agent.pos)

    def test_asleep_at_midnight(self):
        model = _make_model()
        calls = model.step_all(0)
        assert all(not chain for chain in calls.values())
        assert all(not a.awake for a in model.agents)

    def test_wake_emits_plan_chain(self):
        model = _make_model(n_agents=1)
        persona = model.agents[0].persona
        for step in range(persona.wake_step + 1):
            calls = model.step_all(step)
        chain = calls[0]
        assert chain, "wake step must emit calls"
        assert chain[0].func == "daily_plan"
        assert all(c.func == "wake_routine" for c in chain[1:])
        assert model.agents[0].awake

    def test_movement_speed_limit(self):
        model = _make_model()
        prev = [a.pos for a in model.agents]
        for step in range(2200, 2600):  # morning: agents move to work
            model.step_all(step)
            for agent, old in zip(model.agents, prev):
                dx = abs(agent.pos[0] - old[0])
                dy = abs(agent.pos[1] - old[1])
                assert dx + dy <= 1
            prev = [a.pos for a in model.agents]

    def test_positions_stay_walkable(self):
        model = _make_model()
        for step in range(2200, 2500):
            model.step_all(step)
            for agent in model.agents:
                assert model.world.is_walkable(*agent.pos)

    def test_deterministic_across_instances(self):
        a, b = _make_model(seed=9), _make_model(seed=9)
        for step in range(2200, 2400):
            calls_a = a.step_all(step)
            calls_b = b.step_all(step)
            assert calls_a == calls_b
        assert [x.pos for x in a.agents] == [x.pos for x in b.agents]

    def test_funcs_registry_consistent(self):
        assert len(FUNCS) == len(FUNC_INDEX)
        for i, name in enumerate(FUNCS):
            assert FUNC_INDEX[name] == i

    def test_token_bounds(self):
        model = _make_model()
        for step in range(2100, 2600):
            for chain in model.step_all(step).values():
                for call in chain:
                    assert 16 <= call.input_tokens <= 1600
                    assert call.output_tokens >= 1

    def test_conversation_pairs_symmetric_and_frozen(self):
        """Force two agents together and verify conversation mechanics."""
        model = _make_model(n_agents=2, seed=1)
        a, b = model.agents
        cafe = model.world.venue("Hobbs Cafe")
        a.pos = b.pos = cafe.center
        a.awake = b.awake = True
        a.activity = b.activity = "lunch"
        a.persona = a.persona  # unchanged
        started_step = None
        for step in range(4400, 4800):
            calls = model.step_agents(step, [0, 1])
            if a.busy_chatting:
                started_step = step
                break
            # keep them in place
            a.pos = b.pos = cafe.center
            a.target_venue = b.target_venue = None
        assert started_step is not None, "conversation should eventually fire"
        assert b.busy_chatting
        assert a.conv_state.partner == 1
        assert b.conv_state.partner == 0
        # The meeting step carries the utterance chain on the initiator.
        utterances = [c for c in calls[0] if c.func == "utterance"]
        assert len(utterances) >= 8
        assert any(c.func == "convo_summary" for c in calls[0])
        assert any(c.func == "convo_summary" for c in calls[1])
        # Frozen agents don't move while engaged.
        pos_a = a.pos
        model.step_agents(started_step + 1, [0, 1])
        assert a.pos == pos_a
        # Countdown ends symmetrically.
        for step in range(started_step + 2, started_step + 80):
            model.step_agents(step, [0, 1])
            assert a.busy_chatting == b.busy_chatting
            if not a.busy_chatting:
                break
        assert not a.busy_chatting
