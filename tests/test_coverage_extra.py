"""Additional edge-case coverage across modules."""

from hypothesis import given, settings, strategies as st

from repro.config import (DependencyConfig, SchedulerConfig,
                          ServingConfig)
from repro.core import DependencyRules, run_replay
from repro.devent import Kernel
from repro.serving import ServingEngine
from repro.trace import generate_concatenated_trace

from helpers import random_trace


class TestMoEServing:
    def test_mixtral_runs_end_to_end(self):
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(
            model="mixtral-8x7b", gpu="a100", dp=1, tp=2))
        done = []
        for _ in range(6):
            engine.generate(640, 22, on_complete=lambda r: done.append(r))
        k.run()
        assert len(done) == 6

    def test_moe_batching_gain_exceeds_dense(self):
        """MoE decode gets *relatively* cheaper iterations at batch 1
        (only top-k experts streamed), so its single-stream latency is
        much lower than dense-70B on the same hardware."""
        def single_latency(model, tp):
            k = Kernel()
            engine = ServingEngine(k, ServingConfig(
                model=model, gpu="a100", dp=1, tp=tp))
            engine.generate(640, 22)
            k.run()
            return engine.metrics.last_finish

        assert single_latency("mixtral-8x7b", 2) < \
            single_latency("llama3-70b", 4)


class TestIterationModePriority:
    def test_priority_respected_in_iteration_mode(self):
        k = Kernel()
        engine = ServingEngine(k, ServingConfig(
            model="llama3-8b", gpu="l4", fidelity="iteration",
            max_running_requests=1))
        finished = []
        engine.generate(640, 50, priority=9.0,
                        on_complete=lambda r: finished.append(r))

        def late():
            engine.generate(640, 10, priority=5.0,
                            on_complete=lambda r: finished.append(r))
            engine.generate(640, 10, priority=1.0,
                            on_complete=lambda r: finished.append(r))

        k.call_at(0.05, late)
        k.run()
        by_priority = {r.priority: r.finish_time for r in finished}
        assert by_priority[1.0] < by_priority[5.0]


class TestConcatenatedReplay:
    def test_segments_unlock_extra_parallelism(self):
        """Two independent villes must run further OOO than one: distant
        segments never block each other, the paper's §4.3 argument."""
        day = generate_concatenated_trace(50, n_steps=2700)
        window = day.window(2340, 2640)  # 6:30-7:20am activity
        two_villes = run_replay(
            window, SchedulerConfig(policy="metropolis"),
            ServingConfig(model="llama3-8b", gpu="l4", dp=2))
        assert two_villes.n_calls_completed == window.n_calls
        # Cross-segment distances exceed any block threshold reachable in
        # this window, so the spread is unconstrained across segments.
        assert two_villes.driver_stats.max_step_spread > 0

    def test_cross_segment_isolation(self):
        day = generate_concatenated_trace(50, n_steps=100)
        seg_a = day.positions[:25, :, 0]
        seg_b = day.positions[25:, :, 0]
        assert seg_a.max() < seg_b.min()


class TestRunReplayApi:
    def test_timeline_off_by_default(self, synthetic_trace, l4_serving):
        result = run_replay(synthetic_trace,
                            SchedulerConfig(policy="metropolis"), l4_serving)
        assert result.timeline is None

    def test_priority_flag_propagates_to_serving(self, synthetic_trace):
        # scheduler.priority=False must override serving priority too.
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis", priority=False),
            ServingConfig(model="llama3-8b", gpu="l4",
                          priority_scheduling=True))
        assert result.n_calls_completed == synthetic_trace.n_calls

    def test_default_configs(self, synthetic_trace):
        result = run_replay(synthetic_trace)
        assert result.policy == "metropolis"

    def test_gpu_busy_fraction_bounds(self, synthetic_trace, l4_serving):
        result = run_replay(synthetic_trace,
                            SchedulerConfig(policy="metropolis"), l4_serving)
        assert 0.0 < result.gpu_busy_fraction <= 1.0


class TestRulesRunaheadProperty:
    @settings(max_examples=80, deadline=None)
    @given(distance=st.floats(0.0, 200.0),
           radius_p=st.floats(0.0, 10.0),
           max_vel=st.floats(0.25, 3.0))
    def test_max_runahead_consistent_with_blocked(self, distance, radius_p,
                                                  max_vel):
        rules = DependencyRules(
            DependencyConfig(radius_p=radius_p, max_vel=max_vel))
        lead = rules.max_runahead(distance)
        assert lead >= 0
        # At the returned lead the pair must not block (unless lead 0).
        if lead > 0:
            assert not rules.blocked((0.0, 0.0), lead, (distance, 0.0), 0)
        # One step further must block.
        assert rules.blocked((0.0, 0.0), lead + 1, (distance, 0.0), 0)


class TestTraceWindowComposition:
    def test_double_window_base_step(self, synthetic_trace):
        w1 = synthetic_trace.window(5, 35)
        w2 = w1.window(10, 20)
        assert w2.meta.base_step == 15
        assert w2.meta.n_steps == 10

    def test_window_preserves_chains(self, synthetic_trace):
        w = synthetic_trace.window(10, 30)
        for aid in range(w.meta.n_agents):
            for step in range(w.meta.n_steps):
                assert w.chain(aid, step) == \
                    synthetic_trace.chain(aid, step + 10)

    def test_func_name_roundtrip(self, synthetic_trace):
        if synthetic_trace.n_calls:
            fid = int(synthetic_trace.call_func[0])
            assert isinstance(synthetic_trace.func_name(fid), str)


class TestSchedulerRobustness:
    def test_empty_call_trace_completes_fast(self):
        trace = random_trace(seed=9, n_agents=4, n_steps=30, p_call=0.0)
        assert trace.n_calls == 0
        result = run_replay(trace, SchedulerConfig(policy="metropolis"),
                            ServingConfig(model="llama3-8b", gpu="l4"))
        assert result.n_tasks_completed == 4 * 30
        assert result.completion_time < 60.0  # overhead only

    def test_single_agent_trace(self):
        trace = random_trace(seed=10, n_agents=1, n_steps=20)
        for policy in ("metropolis", "oracle", "parallel-sync"):
            result = run_replay(trace, SchedulerConfig(policy=policy),
                                ServingConfig(model="llama3-8b", gpu="l4"))
            assert result.n_calls_completed == trace.n_calls

    def test_dense_crowd_trace(self):
        """All agents packed in one corner: everything couples; the OOO
        scheduler must degrade to lock-step clusters, not deadlock."""
        trace = random_trace(seed=11, n_agents=8, n_steps=25,
                             width=4, height=4)
        result = run_replay(trace,
                            SchedulerConfig(policy="metropolis",
                                            validate_causality=True),
                            ServingConfig(model="llama3-8b", gpu="l4"))
        assert result.n_calls_completed == trace.n_calls
        assert result.driver_stats.mean_cluster_size > 4.0
