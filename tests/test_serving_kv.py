"""Scheduler-aware serving: KV retention/eviction, invocation distance,
cluster-granular dispatch determinism, and the serving bench gate."""

import pytest

from repro.config import SchedulerConfig, ServingConfig
from repro.core import run_replay
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.core.metropolis import MetropolisDriver
from repro.core.rules import DependencyRules
from repro.core.tasks import ChainExecutor
from repro.devent import Kernel
from repro.errors import ConfigError, ScenarioError, ServingError, WorldError
from repro.serving import (KV_POLICIES, KVCacheManager, LLMRequest,
                           ServingEngine, ServingProfile)
from repro.world.behavior import BehaviorModel

from helpers import random_trace


def _req(rid, prompt=100, out=10, agent=0):
    return LLMRequest(request_id=rid, prompt_tokens=prompt,
                      output_tokens=out, agent_id=agent)


class TestRetention:
    def test_policies_registered(self):
        assert KV_POLICIES == ("none", "lru", "distance")
        with pytest.raises(ServingError):
            KVCacheManager(1000, policy="fifo")
        with pytest.raises(ConfigError):
            ServingConfig(kv_policy="fifo")

    def test_none_policy_never_retains(self):
        mgr = KVCacheManager(1000, policy="none")
        assert not mgr.retain(agent_id=0, tokens=100, now=1.0)
        r = _req(1)
        mgr.reserve(r)
        mgr.release(r)
        assert mgr.retained_tokens == 0
        assert mgr.stats()["hits"] == 0 and mgr.stats()["misses"] == 0

    def test_retain_then_hit_shrinks_cold_prefill(self):
        mgr = KVCacheManager(1000, policy="lru")
        assert mgr.retain(agent_id=3, tokens=110, now=1.0)
        assert mgr.has_retained(3)
        r = _req(1, prompt=200, out=10, agent=3)
        cached = mgr.reserve(r)
        assert cached == 110            # whole segment re-used
        assert not mgr.has_retained(3)  # consumed, not copied
        assert mgr.stats()["hits"] == 1
        assert mgr.stats()["hit_tokens"] == 110

    def test_hit_capped_at_prompt(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=3, tokens=500, now=1.0)
        cached = mgr.reserve(_req(1, prompt=120, out=10, agent=3))
        assert cached == 120

    def test_miss_counted(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.reserve(_req(1, agent=7))
        assert mgr.stats()["misses"] == 1

    def test_fits_ignores_retained(self):
        """Admission semantics must match a retention-free cache."""
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=900, now=0.0)
        r = _req(1, prompt=800, out=100, agent=5)
        assert mgr.fits(r)   # retained is soft: evictable on demand
        mgr.reserve(r)
        assert mgr.reserved_tokens == 900
        assert mgr.retained_tokens == 0   # evicted to make room
        assert mgr.stats()["evictions"] == 1

    def test_lru_evicts_longest_idle(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=400, now=1.0)   # oldest
        mgr.retain(agent_id=1, tokens=400, now=2.0)
        mgr.retain(agent_id=2, tokens=400, now=3.0)   # evicts agent 0
        assert not mgr.has_retained(0)
        assert mgr.has_retained(1) and mgr.has_retained(2)

    def test_distance_evicts_furthest_invocation(self):
        distance = {0: 1.0, 1: 50.0, 2: 3.0}
        mgr = KVCacheManager(1000, policy="distance",
                             distance_fn=distance.__getitem__)
        mgr.retain(agent_id=0, tokens=400, now=1.0)
        mgr.retain(agent_id=1, tokens=400, now=2.0)
        # Agent 1 is recently used but furthest from its next call:
        # LRU would evict 0; distance must evict 1.
        mgr.retain(agent_id=2, tokens=400, now=3.0)
        assert mgr.has_retained(0)
        assert not mgr.has_retained(1)

    def test_distance_ties_break_lru(self):
        mgr = KVCacheManager(1000, policy="distance",
                             distance_fn=lambda aid: 5.0)
        mgr.retain(agent_id=0, tokens=400, now=1.0)
        mgr.retain(agent_id=1, tokens=400, now=2.0)
        mgr.retain(agent_id=2, tokens=400, now=3.0)
        assert not mgr.has_retained(0)

    def test_retain_never_displaces_better_segment(self):
        """A far-away candidate cannot evict near-wake residents."""
        distance = {0: 1.0, 1: 2.0, 9: 99.0}
        mgr = KVCacheManager(1000, policy="distance",
                             distance_fn=distance.__getitem__)
        mgr.retain(agent_id=0, tokens=500, now=1.0)
        mgr.retain(agent_id=1, tokens=500, now=2.0)
        assert not mgr.retain(agent_id=9, tokens=500, now=3.0)
        assert mgr.stats()["retain_rejects"] == 1
        assert mgr.has_retained(0) and mgr.has_retained(1)

    def test_pin_protects_from_eviction(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=400, now=1.0)
        mgr.retain(agent_id=1, tokens=400, now=2.0)
        assert mgr.pin([0]) == 1
        assert mgr.pin([0, 5]) == 0   # already pinned / not retained
        mgr.retain(agent_id=2, tokens=400, now=3.0)
        assert mgr.has_retained(0)        # pinned survives
        assert not mgr.has_retained(1)    # unpinned LRU victim
        assert mgr.stats()["prefetch_pins"] == 1

    def test_forced_eviction_of_pinned_segment(self):
        """Hard reservations always win — even over pinned segments."""
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=600, now=1.0)
        mgr.pin([0])
        mgr.reserve(_req(1, prompt=700, out=100, agent=5))
        assert not mgr.has_retained(0)
        assert mgr.stats()["forced_evictions"] == 1

    def test_retain_replaces_own_segment(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=300, now=1.0)
        mgr.retain(agent_id=0, tokens=500, now=2.0)
        assert mgr.retained_tokens == 500

    def test_invariant_reserved_plus_retained(self):
        mgr = KVCacheManager(1000, policy="lru")
        mgr.retain(agent_id=0, tokens=500, now=0.0)
        mgr.retain(agent_id=1, tokens=400, now=1.0)
        mgr.reserve(_req(1, prompt=500, out=100, agent=2))
        assert mgr.reserved_tokens + mgr.retained_tokens <= 1000
        assert mgr.retained_fraction <= 1.0


class TestEngineKV:
    def _engine(self, policy="distance", dp=1):
        kernel = Kernel()
        engine = ServingEngine(kernel, ServingConfig(
            model="llama3-8b", gpu="l4", dp=dp, fidelity="fluid",
            kv_policy=policy))
        return kernel, engine

    def test_empty_replicas_raise(self):
        kernel, engine = self._engine()
        engine.replicas.clear()
        with pytest.raises(ServingError):
            engine.busy_fraction(1.0)
        with pytest.raises(ServingError):
            engine._pick_replica()

    def test_dp_zero_rejected_at_config(self):
        with pytest.raises(ConfigError):
            ServingConfig(dp=0)

    def test_retention_end_to_end_hits(self):
        kernel, engine = self._engine(policy="lru")
        for _ in range(3):   # same agent calls thrice back-to-back
            engine.generate(640, 22, agent_id=4)
            kernel.run()
        stats = engine.kv_stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_tokens"] > 0

    def test_retention_speeds_up_repeat_caller(self):
        def total_time(policy):
            kernel, engine = self._engine(policy=policy)
            for _ in range(3):
                engine.generate(640, 22, agent_id=4)
                kernel.run()
            return kernel.now
        assert total_time("lru") < total_time("none")

    def test_prefetch_noop_when_policy_none(self):
        kernel, engine = self._engine(policy="none")
        assert engine.prefetch([1, 2, 3]) == 0

    def test_sticky_routing_to_retained_replica(self):
        kernel, engine = self._engine(policy="lru", dp=4)
        engine.generate(640, 22, agent_id=4)
        kernel.run()
        home = [i for i, r in enumerate(engine.replicas)
                if r.kv.has_retained(4)]
        assert len(home) == 1
        # Load the other replicas: least-loaded would route away, but
        # sticky routing must come back to the retained segment.
        req = engine.generate(640, 22, agent_id=4)
        assert req.replica_id == home[0]
        kernel.run()

    def test_kv_stats_sums_replicas(self):
        kernel, engine = self._engine(policy="lru", dp=2)
        for agent in (1, 2):
            engine.generate(640, 22, agent_id=agent)
        kernel.run()
        assert engine.kv_stats()["misses"] == 2


class TestInvocationDistance:
    def _driver(self, trace, **cfg):
        kernel = Kernel()
        engine = ServingEngine(kernel, ServingConfig(fidelity="fluid"))
        config = SchedulerConfig(**cfg)
        executor = ChainExecutor(kernel, engine, trace, config.overhead)
        return MetropolisDriver(kernel, engine, trace, config,
                                executor), engine

    def test_graph_distance_zero_for_free_agents(self):
        import numpy as np
        rules = DependencyRules()
        graph = SpatioTemporalGraph(
            rules, np.array([(0, 0), (50, 50)], dtype=np.int32))
        assert graph.invocation_distance(0) == 0.0
        graph.mark_running([0])
        assert graph.invocation_distance(0) == 0.0

    def test_graph_distance_positive_for_blocked_agent(self):
        import numpy as np
        rules = DependencyRules()
        graph = SpatioTemporalGraph(
            rules, np.array([(0, 0), (3, 0), (80, 80)], dtype=np.int32))
        # Agent 1 races ahead until the laggard at (0, 0) blocks it.
        for _ in range(6):
            if graph.blocked_by[1]:
                break
            graph.mark_running([1])
            graph.commit([1], np.array([(3, 0)], dtype=np.int32))
        assert graph.blocked_by[1]
        assert graph.invocation_distance(1) >= 1.0
        assert graph.invocation_distance(2) == 0.0

    def test_driver_distance_uses_trace_lookahead(self):
        trace = random_trace(seed=5, n_agents=4, p_call=0.3)
        driver, _ = self._driver(trace)
        for aid in range(4):
            dist = driver.invocation_distance(aid)
            steps = driver._call_steps[aid]
            if steps:
                # At step 0 and unblocked, the distance is exactly the
                # gap to the first call-bearing step.
                assert dist == float(steps[0])
            else:
                assert dist == float("inf")

    def test_driver_distance_infinite_past_last_call(self):
        trace = random_trace(seed=6, n_agents=3, p_call=0.0)
        driver, _ = self._driver(trace)
        assert all(driver.invocation_distance(a) == float("inf")
                   for a in range(3))

    def test_engine_distance_provider_installed(self):
        trace = random_trace(seed=7, n_agents=4)
        driver, engine = self._driver(trace)
        provider = engine._distance_provider
        assert provider is not None
        assert provider(0) == driver.invocation_distance(0)


def _pressure_config(fidelity, policy, priority=True):
    return ServingConfig(model="llama3-8b", gpu="l4", fidelity=fidelity,
                         kv_policy=policy, kv_memory_fraction=0.05,
                         priority_scheduling=priority)


class TestFidelityEquivalenceUnderKV:
    """FluidReplica must match IterationReplica with retention on."""

    TRACE = random_trace(seed=11, n_agents=8, n_steps=30, p_call=0.4)

    @pytest.mark.parametrize("priority", [True, False])
    def test_same_finish_order_and_throughput(self, priority):
        results = {}
        for fidelity in ("fluid", "iteration"):
            results[fidelity] = run_replay(
                self.TRACE,
                SchedulerConfig(policy="metropolis", priority=priority),
                _pressure_config(fidelity, "distance", priority))
        fluid, iteration = results["fluid"], results["iteration"]
        assert fluid.n_calls_completed == iteration.n_calls_completed
        assert fluid.kv_stats["hits"] > 0
        # Retention behaves identically (shared base replica): the KV
        # counters must agree exactly, not just approximately.
        for key in ("hits", "misses", "evictions"):
            assert fluid.kv_stats[key] == iteration.kv_stats[key], key
        # The fluid approximation diverges more under heavy KV-pressure
        # queueing than on open workloads (the 2% bound in
        # test_serving.py) — hold it to the same order of magnitude.
        t_fluid = fluid.engine_metrics.throughput_tokens_per_s()
        t_iter = iteration.engine_metrics.throughput_tokens_per_s()
        assert t_fluid == pytest.approx(t_iter, rel=0.2)

    def test_distance_policy_not_slower_than_lru_here(self):
        outcomes = {}
        for policy in ("lru", "distance"):
            outcomes[policy] = run_replay(
                self.TRACE, SchedulerConfig(policy="metropolis"),
                _pressure_config("fluid", policy))
        assert outcomes["distance"].completion_time <= \
            1.02 * outcomes["lru"].completion_time


class TestClusterDispatchDeterminism:
    def test_replay_deterministic_across_runs(self):
        trace = random_trace(seed=21, n_agents=6)
        times = {run_replay(trace, SchedulerConfig(policy="metropolis"),
                            ServingConfig()).completion_time
                 for _ in range(3)}
        assert len(times) == 1

    def test_policy_none_matches_seed_semantics(self):
        """kv_policy="none" must not change any virtual timing."""
        trace = random_trace(seed=22, n_agents=6)
        base = run_replay(trace, SchedulerConfig(policy="metropolis"),
                          ServingConfig(kv_policy="none"))
        assert base.kv_stats["hits"] == 0
        assert base.kv_stats["retained_tokens"] == 0

    def test_all_policies_complete_all_drivers(self):
        trace = random_trace(seed=23, n_agents=5, n_steps=20)
        for policy in ("single-thread", "parallel-sync", "metropolis",
                       "oracle", "no-dependency"):
            result = run_replay(
                trace, SchedulerConfig(policy=policy),
                ServingConfig(kv_policy="distance",
                              kv_memory_fraction=0.05))
            assert result.n_calls_completed == trace.n_calls, policy


class TestServingProfiles:
    def test_defaults(self):
        p = ServingProfile()
        assert p.platform == "l4-8b" and p.fidelity == "fluid"
        assert 0 < p.kv_pressure_fraction < 1

    def test_frozen(self):
        with pytest.raises(Exception):
            ServingProfile().gpus = 2

    def test_every_scenario_declares_one(self):
        from repro.bench.serving import format_profiles
        from repro.scenarios import get_scenario, scenario_names
        listing = format_profiles()
        for name in scenario_names():
            assert name in listing
            profile = get_scenario(name).serving_profile
            assert profile.platform == "l4-8b"
            assert 0 < profile.kv_pressure_fraction < 1


class TestTokenShapes:
    def test_behavior_shape_override(self):
        from repro.scenarios import get_scenario
        scn = get_scenario("smallville")
        model = scn.model(n_agents=4, seed=0)
        custom = dict(model._func_shape)
        name = next(iter(custom))
        base, top_k, lo, hi = custom[name]
        model2 = BehaviorModel(
            model.world, model.personas, seed=0,
            func_shapes={name: (base * 2, top_k, lo, hi)})
        assert model2._func_shape[name][0] == base * 2

    def test_unknown_func_rejected(self):
        from repro.scenarios import get_scenario
        scn = get_scenario("smallville")
        world, homes = scn.world()
        personas = scn.make_personas(2, 0, homes)
        with pytest.raises(WorldError):
            BehaviorModel(world, personas, seed=0,
                          func_shapes={"telepathy": (1, 1, 1, 2)})


class TestServingBench:
    def _entry(self, scenario, cell, tokens=1000.0, hits=5, ratio=1.0):
        return {"scenario": scenario, "cell": cell,
                "policy": "metropolis", "tokens_per_s": tokens,
                "wall_tokens_per_s": 100.0,
                "tokens_ratio_vs_baseline": ratio,
                "wall_ratio_vs_baseline": 1.0,
                "kv": {"hits": hits}}

    def _report(self, entries, scenarios=("s1",)):
        return {"benchmark": "serving", "scenarios": list(scenarios),
                "cells": ["fluid", "kv-distance", "kv-lru"],
                "entries": entries}

    def test_check_passes_on_good_report(self):
        from repro.bench.serving import check_serving_report
        entries = [self._entry("s1", "fluid"),
                   self._entry("s1", "kv-distance", tokens=900.0),
                   self._entry("s1", "kv-lru", tokens=880.0)]
        assert check_serving_report(self._report(entries)) == []

    def test_missing_cell_fails(self):
        from repro.bench.serving import check_serving_report
        entries = [self._entry("s1", "fluid"),
                   self._entry("s1", "kv-distance", tokens=900.0)]
        failures = check_serving_report(self._report(entries))
        assert any("kv-lru" in f and "missing" in f for f in failures)

    def test_missing_baseline_entry_fails_loudly(self):
        from repro.bench.serving import check_serving_report
        entry = self._entry("s1", "fluid")
        del entry["tokens_ratio_vs_baseline"]
        failures = check_serving_report(
            self._report([entry], scenarios=[]))
        assert any("no baseline entry" in f for f in failures)

    def test_regression_fails(self):
        from repro.bench.serving import check_serving_report
        entries = [self._entry("s1", "fluid", ratio=0.80)]
        failures = check_serving_report(
            self._report(entries, scenarios=[]))
        assert any("below the required" in f for f in failures)

    def test_distance_must_beat_lru_somewhere(self):
        from repro.bench.serving import check_serving_report
        entries = [self._entry("s1", "fluid"),
                   self._entry("s1", "kv-distance", tokens=800.0),
                   self._entry("s1", "kv-lru", tokens=900.0)]
        failures = check_serving_report(self._report(entries))
        assert any("beat LRU" in f for f in failures)

    def test_zero_hits_on_distance_cell_fails(self):
        from repro.bench.serving import check_serving_report
        entries = [self._entry("s1", "fluid"),
                   self._entry("s1", "kv-distance", tokens=950.0, hits=0),
                   self._entry("s1", "kv-lru", tokens=900.0)]
        failures = check_serving_report(self._report(entries))
        assert any("zero KV retention hits" in f for f in failures)

    def test_wall_floor(self):
        from repro.bench.serving import check_serving_report
        entry = self._entry("s1", "fluid")
        entry["wall_ratio_vs_baseline"] = 0.1
        failures = check_serving_report(
            self._report([entry], scenarios=[]))
        assert any("wall-clock" in f for f in failures)

    def test_gate_raises(self):
        from repro.bench.serving import gate_serving
        with pytest.raises(ScenarioError):
            gate_serving(self._report(
                [self._entry("s1", "fluid", ratio=0.5)], scenarios=[]))

    def test_unknown_cell_rejected(self):
        from repro.bench.serving import _cell_config
        from repro.serving.profiles import ServingProfile
        with pytest.raises(ScenarioError):
            _cell_config(ServingProfile(), "kv-random")

    def test_one_real_cell(self):
        """One genuine bench cell end-to-end (the smallest scenario)."""
        from repro.bench.serving import bench_cell
        entry = bench_cell("smallville", "kv-distance")
        assert entry["kv_policy"] == "distance"
        assert entry["tokens_per_s"] > 0
        assert entry["kv"]["hits"] > 0
        assert entry["n_calls"] > 0

    def test_cli_list_profiles(self, capsys):
        from repro.bench.cli import main
        assert main(["serving", "--list-profiles"]) == 0
        out = capsys.readouterr().out
        assert "smallville" in out and "l4-8b" in out

    def test_cli_check_requires_baseline(self, tmp_path, capsys):
        from repro.bench.cli import main
        rc = main(["serving", "--check",
                   "--baseline", str(tmp_path / "nope.json"),
                   "--out", str(tmp_path / "r.json")])
        assert rc == 1
        assert "baseline" in capsys.readouterr().err
