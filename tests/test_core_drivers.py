"""Tests for the scheduling drivers (Algorithm 1, Algorithm 3, oracle,
no-dependency) and the replay engine around them."""

import pytest

from repro.config import (DependencyConfig, OverheadConfig, SchedulerConfig,
                          ServingConfig)
from repro.core import run_replay
from repro.core.engine import critical_time_for
from repro.core.oracle import mean_dependency_count, mine_interaction_groups
from repro.errors import ConfigError

POLICIES = ["single-thread", "parallel-sync", "metropolis", "oracle",
            "no-dependency"]


def _run(trace, policy, l4=1, **sched_kw):
    return run_replay(
        trace,
        SchedulerConfig(policy=policy, **sched_kw),
        ServingConfig(model="llama3-8b", gpu="l4", dp=l4))


class TestAllPoliciesComplete:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_completes_all_calls(self, synthetic_trace, policy):
        result = _run(synthetic_trace, policy)
        assert result.n_calls_completed == synthetic_trace.n_calls
        assert result.completion_time > 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_on_world_trace(self, morning_trace, policy):
        result = _run(morning_trace, policy)
        assert result.n_calls_completed == morning_trace.n_calls

    def test_unknown_policy(self, synthetic_trace):
        with pytest.raises(ConfigError):
            _run(synthetic_trace, "yolo")


class TestOrdering:
    """The paper's performance ordering must hold on real workloads."""

    @pytest.fixture(scope="class")
    def results(self, morning_trace):
        return {p: run_replay(
            morning_trace, SchedulerConfig(policy=p),
            ServingConfig(model="llama3-8b", gpu="l4", dp=1))
            for p in POLICIES}

    def test_single_thread_slowest(self, results):
        assert results["single-thread"].completion_time >= \
            results["parallel-sync"].completion_time

    def test_metropolis_beats_parallel_sync(self, results):
        assert results["metropolis"].completion_time < \
            results["parallel-sync"].completion_time

    def test_oracle_bounds_metropolis(self, results):
        # oracle has strictly fewer constraints -> no slower (tolerance
        # for queueing noise).
        assert results["oracle"].completion_time <= \
            1.05 * results["metropolis"].completion_time

    def test_no_dependency_fastest(self, results):
        fastest = min(r.completion_time for p, r in results.items()
                      if p != "no-dependency")
        assert results["no-dependency"].completion_time <= fastest

    def test_parallelism_ordering(self, results):
        assert results["single-thread"].achieved_parallelism < \
            results["parallel-sync"].achieved_parallelism < \
            results["metropolis"].achieved_parallelism

    def test_single_thread_parallelism_near_one(self, results):
        assert 0.8 <= results["single-thread"].achieved_parallelism <= 1.0

    def test_speedup_helper(self, results):
        m, s = results["metropolis"], results["single-thread"]
        assert m.speedup_over(s) == pytest.approx(
            s.completion_time / m.completion_time)


class TestMetropolisProperties:
    def test_causality_validation_clean(self, synthetic_trace):
        # Runs the O(n^2) §3.2 validator after every commit.
        result = _run(synthetic_trace, "metropolis",
                      validate_causality=True)
        assert result.n_calls_completed == synthetic_trace.n_calls

    def test_causality_validation_on_world_trace(self, morning_trace):
        result = _run(morning_trace, "metropolis", validate_causality=True)
        assert result.n_calls_completed == morning_trace.n_calls

    def test_step_spread_nonzero(self, morning_trace):
        result = _run(morning_trace, "metropolis")
        assert result.driver_stats.max_step_spread > 0

    def test_spread_bounded_by_map(self, morning_trace):
        # Information propagates at max_vel: the spread cannot exceed the
        # map diameter in steps (plus one in-flight step).
        result = _run(morning_trace, "metropolis")
        meta = morning_trace.meta
        diameter = (meta.width ** 2 + meta.height ** 2) ** 0.5
        assert result.driver_stats.max_step_spread <= diameter + 1

    def test_worker_cap_slows_but_completes(self, synthetic_trace):
        unbounded = _run(synthetic_trace, "metropolis", num_workers=0)
        capped = _run(synthetic_trace, "metropolis", num_workers=1)
        assert capped.n_calls_completed == synthetic_trace.n_calls
        assert capped.completion_time >= unbounded.completion_time

    def test_deterministic(self, synthetic_trace):
        a = _run(synthetic_trace, "metropolis")
        b = _run(synthetic_trace, "metropolis")
        assert a.completion_time == b.completion_time

    def test_larger_radius_more_coupling(self, morning_trace):
        tight = _run(morning_trace, "metropolis")
        loose = run_replay(
            morning_trace,
            SchedulerConfig(policy="metropolis",
                            dependency=DependencyConfig(radius_p=12.0)),
            ServingConfig(model="llama3-8b", gpu="l4", dp=1))
        assert loose.driver_stats.mean_cluster_size >= \
            tight.driver_stats.mean_cluster_size
        assert loose.completion_time >= 0.95 * tight.completion_time


class TestParallelSync:
    def test_barrier_count(self, synthetic_trace):
        result = _run(synthetic_trace, "parallel-sync")
        assert result.driver_stats.clusters_dispatched == \
            synthetic_trace.meta.n_steps
        assert len(result.step_completion_times) == \
            synthetic_trace.meta.n_steps

    def test_barriers_monotone(self, synthetic_trace):
        result = _run(synthetic_trace, "parallel-sync")
        times = result.step_completion_times
        assert all(a <= b for a, b in zip(times, times[1:]))


class TestOracleMining:
    def test_groups_partition_agents(self, synthetic_trace):
        groups = mine_interaction_groups(synthetic_trace)
        for per_step in groups:
            members = sorted(m for g in per_step for m in g)
            assert members == list(range(synthetic_trace.meta.n_agents))

    def test_mean_dependency_at_least_one(self, synthetic_trace):
        assert mean_dependency_count(synthetic_trace) >= 1.0

    def test_day_dependency_sparsity(self, day_trace):
        # The paper's headline sparsity claim: ~1.85 of 25.
        mean_deps = mean_dependency_count(day_trace)
        assert 1.2 <= mean_deps <= 2.8


class TestCriticalPath:
    def test_lower_bounds_oracle(self, morning_trace, l4_serving):
        critical = critical_time_for(morning_trace, l4_serving)
        oracle = _run(morning_trace, "oracle")
        assert critical <= oracle.completion_time * 1.001

    def test_grows_with_more_steps(self, synthetic_trace, l4_serving):
        half = synthetic_trace.window(0, synthetic_trace.meta.n_steps // 2)
        assert critical_time_for(half, l4_serving) <= \
            critical_time_for(synthetic_trace, l4_serving)

    def test_faster_hardware_shorter_path(self, morning_trace):
        l4 = critical_time_for(
            morning_trace, ServingConfig(model="llama3-8b", gpu="l4"))
        a100 = critical_time_for(
            morning_trace, ServingConfig(model="llama3-8b", gpu="a100"))
        assert a100 < l4


class TestPriorityScheduling:
    def test_priority_helps_or_neutral_for_metropolis(self, morning_trace):
        with_p = _run(morning_trace, "metropolis", priority=True)
        without = _run(morning_trace, "metropolis", priority=False)
        # Table 1: priority recovers blocked time; allow small noise.
        assert with_p.completion_time <= without.completion_time * 1.05

    def test_flag_reaches_serving_engine(self, synthetic_trace):
        result = _run(synthetic_trace, "metropolis", priority=False)
        assert result.n_calls_completed == synthetic_trace.n_calls


class TestDataParallelScaling:
    def test_more_gpus_help_metropolis(self, morning_trace):
        one = _run(morning_trace, "metropolis", l4=1)
        four = _run(morning_trace, "metropolis", l4=4)
        assert four.completion_time < one.completion_time

    def test_single_thread_cannot_use_gpus(self, morning_trace):
        one = _run(morning_trace, "single-thread", l4=1)
        four = _run(morning_trace, "single-thread", l4=4)
        assert four.completion_time == pytest.approx(
            one.completion_time, rel=0.01)


class TestOverheadConfig:
    def test_zero_overhead_still_works(self, synthetic_trace):
        result = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="metropolis",
                            overhead=OverheadConfig(0.0, 0.0, 0.0, 0.0)),
            ServingConfig(model="llama3-8b", gpu="l4"))
        assert result.n_calls_completed == synthetic_trace.n_calls

    def test_overhead_extends_completion(self, synthetic_trace):
        lean = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="single-thread",
                            overhead=OverheadConfig(0.0, 0.0, 0.0, 0.0)),
            ServingConfig(model="llama3-8b", gpu="l4"))
        heavy = run_replay(
            synthetic_trace,
            SchedulerConfig(policy="single-thread",
                            overhead=OverheadConfig(0.1, 0.0, 0.0, 0.0)),
            ServingConfig(model="llama3-8b", gpu="l4"))
        expected_extra = 0.1 * synthetic_trace.meta.n_agents * \
            synthetic_trace.meta.n_steps
        assert heavy.completion_time - lean.completion_time == \
            pytest.approx(expected_extra, rel=0.05)
