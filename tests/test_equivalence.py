"""End-to-end correctness of out-of-order execution.

The paper's core claim: OOO scheduling "allows certain agents to advance
in simulation time ahead of others *without affecting the simulation's
outcome*". These tests execute the actual world simulation (not a trace)
cluster-by-cluster in rule-respecting but adversarially chosen orders and
assert the world evolves bit-identically to the lock-step reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import FastRng
from repro.config import DependencyConfig
from repro.core import DependencyRules
from repro.core.dependency_graph import SpatioTemporalGraph
from repro.world import BehaviorModel, build_smallville, make_personas


def _model(n_agents, seed):
    world, homes = build_smallville()
    personas = make_personas(n_agents, seed=seed, homes=homes)
    return BehaviorModel(world, personas, seed=seed)


def _world_fingerprint(model):
    return [(a.pos, a.awake, a.activity, a.conversation,
             a.dwell_until, len(a.memory)) for a in model.agents]


def _run_lockstep(n_agents, seed, start, steps):
    model = _model(n_agents, seed)
    calls = []
    for step in range(start + steps):
        out = model.step_all(step)
        if step >= start:
            calls.append({aid: list(chain) for aid, chain in out.items()})
    return _world_fingerprint(model), calls


def _run_ooo(n_agents, seed, start, steps, order_seed):
    """Execute with the §3.2 rules, choosing dispatch order adversarially."""
    model = _model(n_agents, seed)
    for step in range(start):  # warm up lock-step to the active window
        model.step_all(step)
    rules = DependencyRules(DependencyConfig())
    graph = SpatioTemporalGraph(
        rules, {a.agent_id: a.pos for a in model.agents},
        start_step=start)
    rng = FastRng(order_seed)
    target = start + steps
    calls_by_step = [dict() for _ in range(steps)]
    done = set()
    n = n_agents
    while len(done) < n:
        # random dispatchable cluster, preferring agents *ahead* in time
        # (stresses the rules far more than step-priority order)
        candidates = [a for a in range(n)
                      if a not in done and not graph.running[a]
                      and not graph.is_blocked(a)]
        assert candidates, "OOO execution deadlocked"
        candidates.sort(key=lambda a: (-graph.step[a], rng.random()))
        members = None
        for seed_aid in candidates:
            step = graph.step[seed_aid]
            cluster = {seed_aid}
            frontier = [seed_aid]
            while frontier:
                x = frontier.pop()
                for other in range(n):
                    if (other not in cluster and other not in done
                            and not graph.running[other]
                            and graph.step[other] == step
                            and rules.coupled(graph.pos[x],
                                              graph.pos[other])):
                        cluster.add(other)
                        frontier.append(other)
            if not any(graph.is_blocked(m) for m in cluster):
                members = sorted(cluster)
                break
        assert members is not None, \
            "no dispatchable cluster (min-step clusters must always run)"
        graph.mark_running(members)
        out = model.step_agents(step, members)
        for aid, chain in out.items():
            calls_by_step[step - start][aid] = list(chain)
        graph.commit(members,
                     {aid: model.agents[aid].pos for aid in members})
        graph.validate()  # §3.2 must hold at every state
        for aid in members:
            if graph.step[aid] >= target:
                done.add(aid)
    return _world_fingerprint(model), calls_by_step


class TestOOOEquivalence:
    @pytest.mark.parametrize("order_seed", [1, 2, 3])
    def test_world_state_identical(self, order_seed):
        n_agents, seed = 6, 12
        start, steps = 2300, 120  # morning: movement + wake chains
        ref_state, ref_calls = _run_lockstep(n_agents, seed, start, steps)
        ooo_state, ooo_calls = _run_ooo(n_agents, seed, start, steps,
                                        order_seed)
        assert ooo_state == ref_state

    def test_llm_calls_identical(self):
        n_agents, seed = 6, 12
        start, steps = 2300, 120
        _, ref_calls = _run_lockstep(n_agents, seed, start, steps)
        _, ooo_calls = _run_ooo(n_agents, seed, start, steps, order_seed=7)
        for step_idx in range(steps):
            ref = {aid: chain for aid, chain in ref_calls[step_idx].items()
                   if chain}
            ooo = {aid: chain for aid, chain in ooo_calls[step_idx].items()
                   if chain}
            assert ooo == ref, f"calls diverged at step offset {step_idx}"

    @settings(max_examples=6, deadline=None)
    @given(order_seed=st.integers(0, 10**6))
    def test_equivalence_under_random_orders(self, order_seed):
        n_agents, seed = 4, 3
        start, steps = 2300, 60
        ref_state, _ = _run_lockstep(n_agents, seed, start, steps)
        ooo_state, _ = _run_ooo(n_agents, seed, start, steps, order_seed)
        assert ooo_state == ref_state

    def test_lunchtime_conversations_preserved(self):
        """The socially dense window (conversations couple agents)."""
        n_agents, seed = 8, 21
        start, steps = 4350, 80  # ~12:05pm
        ref_state, _ = _run_lockstep(n_agents, seed, start, steps)
        ooo_state, _ = _run_ooo(n_agents, seed, start, steps, order_seed=5)
        assert ooo_state == ref_state
