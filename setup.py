"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (legacy editable installs go through ``setup.py``).
"""

from setuptools import setup

setup()
